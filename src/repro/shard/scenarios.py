"""Shard-aware workload scenarios.

A whole-machine workload cannot be a plain script once the machine is
sharded: each shard only holds its own node boards, so the workload must
be expressed as *per-shard setup* — "spawn the programs whose home node
you own".  A :class:`ShardScenario` packages that: the runner calls
:meth:`~ShardScenario.setup` once per shard per phase (with the shard's
local node range) and :meth:`~ShardScenario.result` after the global
drain.

Every scenario here is written against the wide-safe MiniMPI
point-to-point layer, so the same workload runs on 2 nodes or 512.  The
registry holds the workloads the shard parity tests and the scaling
benchmark share:

``fig3``   ping-pong latency ladder between the first and last node
           (the paper's Figure-3 shape; crosses every shard boundary).
``mixed``  all-to-all staggered messaging — the mixed-workload
           determinism pattern from ``tests/test_determinism.py``.
``sync``   software-tree barrier + allreduce on every rank.
``chaos``  ``mixed`` under a fault plan that downs a leaf uplink —
           a link that *is* a shard boundary at ``shards >= 2`` — then
           repairs it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError


class ShardScenario:
    """One workload, described shard-locally.

    Subclasses override :meth:`setup` (spawn programs for nodes in
    ``local_nodes``; stash anything :meth:`result` needs in ``ctx``,
    which is private to the shard and its phases) and :meth:`result`
    (return a *picklable* value — it may cross a worker pipe).
    :meth:`prepare` runs once in the coordinator before any sub-machine
    is built and may mutate the config (fault plans, queue depths).
    """

    name = "scenario"
    #: number of setup/drain rounds; phase ``p`` starts only after phase
    #: ``p-1`` is globally quiescent and all shard clocks are aligned.
    phases = 1

    def prepare(self, config: MachineConfig) -> None:
        """Adjust the machine config before the shards are built."""

    def setup(self, phase: int, machine, local_nodes, ctx: Dict[str, Any]
              ) -> None:
        raise NotImplementedError

    def result(self, machine, local_nodes, ctx: Dict[str, Any]) -> Any:
        return None

    # -- shared helpers ----------------------------------------------------

    def _mpi(self, machine, ctx: Dict[str, Any]):
        """The shard's MiniMPI factory (software tree: no cluster-wide
        firmware install, so it builds cleanly on a partial machine)."""
        if "mpi" not in ctx:
            from repro.lib.mpi import MiniMPI

            ctx["mpi"] = MiniMPI(machine, algo="tree")
        return ctx["mpi"]


class PingScenario(ShardScenario):
    """Figure-3 shape: a latency ladder, first node <-> last node."""

    name = "fig3"

    def __init__(self, sizes: Sequence[int] = (4, 64, 512),
                 pings: int = 3) -> None:
        self.sizes = tuple(sizes)
        self.pings = pings

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        n = machine.config.n_nodes
        if n < 2:
            raise ConfigError("fig3 ping-pong needs at least 2 nodes")
        src, dst = 0, n - 1
        schedule = [s for s in self.sizes for _ in range(self.pings)]
        if src in local_nodes:
            src_comm = self._mpi(machine, ctx).rank(src)

            def pinger(api):
                rtts: List[Tuple[int, float]] = []
                ok = True
                for i, size in enumerate(schedule):
                    payload = bytes((i + j) & 0xFF for j in range(size))
                    t0 = api.now
                    yield from src_comm.send(api, dst, payload, tag=1)
                    _s, _t, back = yield from src_comm.recv(api, src=dst,
                                                            tag=2)
                    ok = ok and back == payload
                    rtts.append((size, api.now - t0))
                ctx["rtts"] = rtts
                ctx["echo_ok"] = ok

            machine.spawn(src, pinger)
        if dst in local_nodes:
            dst_comm = self._mpi(machine, ctx).rank(dst)

            def echo(api):
                for _ in range(len(schedule)):
                    _s, _t, data = yield from dst_comm.recv(api, src=src,
                                                            tag=1)
                    yield from dst_comm.send(api, src, data, tag=2)

            machine.spawn(dst, echo)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        return {"rtts": ctx.get("rtts"), "echo_ok": ctx.get("echo_ok")}


class MixedScenario(ShardScenario):
    """Staggered all-to-all messaging (the determinism-suite pattern).

    Rank ``r`` sends ``rounds`` messages to ``(r + 1 + i) % n`` and then
    drains exactly the deliveries addressed to it, logging each arrival.
    Traffic between ranks in different node blocks crosses the shard
    boundary; traffic inside a block stays shard-local — both paths run
    in the same event history.
    """

    name = "mixed"

    def __init__(self, rounds: int = 6, payload: int = 16) -> None:
        self.rounds = rounds
        self.payload = payload

    def _incoming(self, rank: int, n: int) -> int:
        return sum(1 for sender in range(n) for i in range(self.rounds)
                   if (sender + 1 + i) % n == rank and rank != sender)

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        n = machine.config.n_nodes
        mpi = self._mpi(machine, ctx)
        log = ctx.setdefault("log", [])

        def worker(api, rank):
            comm = mpi.rank(rank)
            for i in range(self.rounds):
                dst = (rank + 1 + i) % n
                if dst != rank:
                    body = bytes([rank & 0xFF, i]) * (self.payload // 2)
                    yield from comm.send(api, dst, body, tag=3)
            for _ in range(self._incoming(rank, n)):
                src, _tag, data = yield from comm.recv(api, tag=3)
                log.append((api.now, rank, src, bytes(data[:2])))

        for rank in local_nodes:
            machine.spawn(rank, worker, rank)

    def result(self, machine, local_nodes, ctx) -> List[Tuple]:
        return ctx.get("log", [])


class SyncScenario(ShardScenario):
    """Every rank: barrier, allreduce(rank + 1), barrier."""

    name = "sync"

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        mpi = self._mpi(machine, ctx)
        sums = ctx.setdefault("sums", {})

        def worker(api, rank):
            comm = mpi.rank(rank)
            yield from comm.barrier(api)
            total = yield from comm.allreduce(api, rank + 1, op="sum")
            yield from comm.barrier(api)
            sums[rank] = total

        for rank in local_nodes:
            machine.spawn(rank, worker, rank)

    def result(self, machine, local_nodes, ctx) -> Dict[int, Any]:
        return ctx.get("sums", {})


def boundary_link_names(config: MachineConfig, ref_shards: int = 2
                        ) -> List[str]:
    """Link names cut by the ``ref_shards``-way partition of ``config``.

    Computed against a *fixed reference* shard count, not the config's
    own, so callers (the chaos scenario, its parity test) derive the
    identical link set no matter how many shards actually run.
    """
    from dataclasses import replace

    from repro.shard.partition import ShardPlan

    plan = ShardPlan(replace(config, shards=ref_shards))
    topo = plan.topology
    cut: List[str] = []
    for node in range(config.n_nodes):
        leaf = topo.leaf_switch(node)
        if plan.node_shard(node) != plan.switch_shard(1, leaf):
            cut.append(f"n{node}->sw1.{leaf}")
            cut.append(f"sw1.{leaf}->n{node}")
    for level in range(1, topo.levels):
        for index in range(topo.switches_per_level):
            here = plan.switch_shard(level, index)
            for b in range(topo.down_degree):
                p_level, p_index = topo.up_target(level, index, b)
                if here != plan.switch_shard(p_level, p_index):
                    cut.append(f"sw{level}.{index}->sw{p_level}.{p_index}")
                    cut.append(f"sw{p_level}.{p_index}->sw{level}.{index}")
    return sorted(set(cut))


class ChaosScenario(MixedScenario):
    """The mixed workload with boundary links failing mid-run.

    The plan downs the first two links cut by the reference 2-way
    partition (see :func:`boundary_link_names`) — at ``shards >= 2``
    cross-shard traffic must reroute around the failure over the fat
    tree's path diversity — then repairs them.  The down/up timeline is
    statically known, so every shard count observes the identical
    routing history.
    """

    name = "chaos"

    def __init__(self, down_ns: float = 40_000.0, up_ns: float = 200_000.0,
                 n_links: int = 2, **kw) -> None:
        super().__init__(**kw)
        self.down_ns = down_ns
        self.up_ns = up_ns
        self.n_links = n_links

    def prepare(self, config: MachineConfig) -> None:
        from repro.faults.plan import FaultPlan, LinkEvent

        if config.faults is not None:
            raise ConfigError("chaos scenario supplies its own fault plan")
        victims = boundary_link_names(config)[:self.n_links]
        if not victims:
            raise ConfigError("no shard-boundary links to fault")
        events = []
        for name in victims:
            events.append(LinkEvent(time_ns=self.down_ns, link=name,
                                    up=False))
            events.append(LinkEvent(time_ns=self.up_ns, link=name, up=True))
        config.faults = FaultPlan(seed=config.seed, link_events=events)


_REGISTRY = {
    PingScenario.name: PingScenario,
    MixedScenario.name: MixedScenario,
    SyncScenario.name: SyncScenario,
    ChaosScenario.name: ChaosScenario,
}


def scenario(name: str, **kwargs: Any) -> ShardScenario:
    """Instantiate a registered scenario by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)
