"""Shard-aware workload scenarios.

A whole-machine workload cannot be a plain script once the machine is
sharded: each shard only holds its own node boards, so the workload must
be expressed as *per-shard setup* — "spawn the programs whose home node
you own".  A :class:`ShardScenario` packages that: the runner calls
:meth:`~ShardScenario.setup` once per shard per phase (with the shard's
local node range) and :meth:`~ShardScenario.result` after the global
drain.

Every scenario here is written against the wide-safe MiniMPI
point-to-point layer, so the same workload runs on 2 nodes or 512.  The
registry holds the workloads the shard parity tests and the scaling
benchmark share:

``fig3``   ping-pong latency ladder between the first and last node
           (the paper's Figure-3 shape; crosses every shard boundary).
``mixed``  all-to-all staggered messaging — the mixed-workload
           determinism pattern from ``tests/test_determinism.py``.
``sync``   software-tree barrier + allreduce on every rank.
``chaos``  ``mixed`` under a fault plan that downs a leaf uplink —
           a link that *is* a shard boundary at ``shards >= 2`` — then
           repairs it.
``shm_graph``  level-synchronous parallel BFS over an S-COMA shared
           region (the directory-coherence workload; shards=1 only).
``shm_hash``   striped-lock shared hash table: every rank inserts,
           then looks its keys back up (shards=1 only).
``sync_burst`` simultaneous-arrival counting-barrier burst against a
           deliberately shallow sP service queue — the PR 7 overflow
           regression shape, sized for the interleaving explorer.
``shm_takeover`` home-node stores racing a remote exclusive takeover
           of the same S-COMA line — the PR 9 FLUSH-vs-KILL regression
           shape (shards=1 only).

The production-traffic scenarios (``traffic_kv``, ``traffic_train``,
``traffic_usvc`` — see :mod:`repro.traffic.scenarios`) register here
lazily, so ``scenario("traffic_kv")`` works everywhere without this
module importing the traffic package at import time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError


class ShardScenario:
    """One workload, described shard-locally.

    Subclasses override :meth:`setup` (spawn programs for nodes in
    ``local_nodes``; stash anything :meth:`result` needs in ``ctx``,
    which is private to the shard and its phases) and :meth:`result`
    (return a *picklable* value — it may cross a worker pipe).
    :meth:`prepare` runs once in the coordinator before any sub-machine
    is built and may mutate the config (fault plans, queue depths).
    """

    name = "scenario"
    #: number of setup/drain rounds; phase ``p`` starts only after phase
    #: ``p-1`` is globally quiescent and all shard clocks are aligned.
    phases = 1

    def prepare(self, config: MachineConfig) -> None:
        """Adjust the machine config before the shards are built."""

    def setup(self, phase: int, machine, local_nodes, ctx: Dict[str, Any]
              ) -> None:
        raise NotImplementedError

    def result(self, machine, local_nodes, ctx: Dict[str, Any]) -> Any:
        return None

    # -- shared helpers ----------------------------------------------------

    def _mpi(self, machine, ctx: Dict[str, Any]):
        """The shard's MiniMPI factory (software tree: no cluster-wide
        firmware install, so it builds cleanly on a partial machine)."""
        if "mpi" not in ctx:
            from repro.lib.mpi import MiniMPI

            ctx["mpi"] = MiniMPI(machine, algo="tree")
        return ctx["mpi"]


class PingScenario(ShardScenario):
    """Figure-3 shape: a latency ladder, first node <-> last node."""

    name = "fig3"

    def __init__(self, sizes: Sequence[int] = (4, 64, 512),
                 pings: int = 3) -> None:
        self.sizes = tuple(sizes)
        self.pings = pings

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        n = machine.config.n_nodes
        if n < 2:
            raise ConfigError("fig3 ping-pong needs at least 2 nodes")
        src, dst = 0, n - 1
        schedule = [s for s in self.sizes for _ in range(self.pings)]
        if src in local_nodes:
            src_comm = self._mpi(machine, ctx).rank(src)

            def pinger(api):
                rtts: List[Tuple[int, float]] = []
                ok = True
                for i, size in enumerate(schedule):
                    payload = bytes((i + j) & 0xFF for j in range(size))
                    t0 = api.now
                    yield from src_comm.send(api, dst, payload, tag=1)
                    _s, _t, back = yield from src_comm.recv(api, src=dst,
                                                            tag=2)
                    ok = ok and back == payload
                    rtts.append((size, api.now - t0))
                ctx["rtts"] = rtts
                ctx["echo_ok"] = ok

            machine.spawn(src, pinger)
        if dst in local_nodes:
            dst_comm = self._mpi(machine, ctx).rank(dst)

            def echo(api):
                for _ in range(len(schedule)):
                    _s, _t, data = yield from dst_comm.recv(api, src=src,
                                                            tag=1)
                    yield from dst_comm.send(api, src, data, tag=2)

            machine.spawn(dst, echo)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        return {"rtts": ctx.get("rtts"), "echo_ok": ctx.get("echo_ok")}


class MixedScenario(ShardScenario):
    """Staggered all-to-all messaging (the determinism-suite pattern).

    Rank ``r`` sends ``rounds`` messages to ``(r + 1 + i) % n`` and then
    drains exactly the deliveries addressed to it, logging each arrival.
    Traffic between ranks in different node blocks crosses the shard
    boundary; traffic inside a block stays shard-local — both paths run
    in the same event history.
    """

    name = "mixed"

    def __init__(self, rounds: int = 6, payload: int = 16) -> None:
        self.rounds = rounds
        self.payload = payload

    def _incoming(self, rank: int, n: int) -> int:
        return sum(1 for sender in range(n) for i in range(self.rounds)
                   if (sender + 1 + i) % n == rank and rank != sender)

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        n = machine.config.n_nodes
        mpi = self._mpi(machine, ctx)
        log = ctx.setdefault("log", [])

        def worker(api, rank):
            comm = mpi.rank(rank)
            for i in range(self.rounds):
                dst = (rank + 1 + i) % n
                if dst != rank:
                    body = bytes([rank & 0xFF, i]) * (self.payload // 2)
                    yield from comm.send(api, dst, body, tag=3)
            for _ in range(self._incoming(rank, n)):
                src, _tag, data = yield from comm.recv(api, tag=3)
                log.append((api.now, rank, src, bytes(data[:2])))

        for rank in local_nodes:
            machine.spawn(rank, worker, rank)

    def result(self, machine, local_nodes, ctx) -> List[Tuple]:
        return ctx.get("log", [])


class SyncScenario(ShardScenario):
    """Every rank: barrier, allreduce(rank + 1), barrier."""

    name = "sync"

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        mpi = self._mpi(machine, ctx)
        sums = ctx.setdefault("sums", {})

        def worker(api, rank):
            comm = mpi.rank(rank)
            yield from comm.barrier(api)
            total = yield from comm.allreduce(api, rank + 1, op="sum")
            yield from comm.barrier(api)
            sums[rank] = total

        for rank in local_nodes:
            machine.spawn(rank, worker, rank)

    def result(self, machine, local_nodes, ctx) -> Dict[int, Any]:
        return ctx.get("sums", {})


def boundary_link_names(config: MachineConfig, ref_shards: int = 2
                        ) -> List[str]:
    """Link names cut by the ``ref_shards``-way partition of ``config``.

    Computed against a *fixed reference* shard count, not the config's
    own, so callers (the chaos scenario, its parity test) derive the
    identical link set no matter how many shards actually run.
    """
    from dataclasses import replace

    from repro.shard.partition import ShardPlan

    plan = ShardPlan(replace(config, shards=ref_shards))
    topo = plan.topology
    cut: List[str] = []
    for node in range(config.n_nodes):
        leaf = topo.leaf_switch(node)
        if plan.node_shard(node) != plan.switch_shard(1, leaf):
            cut.append(f"n{node}->sw1.{leaf}")
            cut.append(f"sw1.{leaf}->n{node}")
    for level in range(1, topo.levels):
        for index in range(topo.switches_per_level):
            here = plan.switch_shard(level, index)
            for b in range(topo.down_degree):
                p_level, p_index = topo.up_target(level, index, b)
                if here != plan.switch_shard(p_level, p_index):
                    cut.append(f"sw{level}.{index}->sw{p_level}.{p_index}")
                    cut.append(f"sw{p_level}.{p_index}->sw{level}.{index}")
    return sorted(set(cut))


class ChaosScenario(MixedScenario):
    """The mixed workload with boundary links failing mid-run.

    The plan downs the first two links cut by the reference 2-way
    partition (see :func:`boundary_link_names`) — at ``shards >= 2``
    cross-shard traffic must reroute around the failure over the fat
    tree's path diversity — then repairs them.  The down/up timeline is
    statically known, so every shard count observes the identical
    routing history.
    """

    name = "chaos"

    def __init__(self, down_ns: float = 40_000.0, up_ns: float = 200_000.0,
                 n_links: int = 2, **kw) -> None:
        super().__init__(**kw)
        self.down_ns = down_ns
        self.up_ns = up_ns
        self.n_links = n_links

    def prepare(self, config: MachineConfig) -> None:
        from repro.faults.plan import FaultPlan, LinkEvent

        if config.faults is not None:
            raise ConfigError("chaos scenario supplies its own fault plan")
        victims = boundary_link_names(config)[:self.n_links]
        if not victims:
            raise ConfigError("no shard-boundary links to fault")
        events = []
        for name in victims:
            events.append(LinkEvent(time_ns=self.down_ns, link=name,
                                    up=False))
            events.append(LinkEvent(time_ns=self.up_ns, link=name, up=True))
        config.faults = FaultPlan(seed=config.seed, link_events=events)


class _CoherentScenario(ShardScenario):
    """Base for S-COMA shared-memory workloads.

    The coherence traffic itself is ordinary firmware messaging and
    would shard, but the sanitizer's quiescence check fires at every
    window barrier — where an in-flight invalidation round is
    legitimate — so these scenarios pin ``shards=1`` until windowed
    quiescence learns to carry BUSY lines across barriers.
    """

    def prepare(self, config: MachineConfig) -> None:
        if config.shards > 1:
            raise ConfigError(
                f"scenario {self.name!r} requires shards=1 (directory "
                f"quiescence is checked at every window barrier)")


class GraphScenario(_CoherentScenario):
    """Parallel BFS over a shared distance array (see
    :mod:`repro.shm.workloads`): phase 0 runs the level-synchronous
    traversal on every rank, phase 1 coherently re-reads the distances
    on rank 0 and diffs them against the sequential reference."""

    name = "shm_graph"
    phases = 2

    def __init__(self, n_vertices: int = 96, degree: int = 2,
                 seed: int = 1) -> None:
        self.n_vertices = n_vertices
        self.degree = degree
        self.seed = seed

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.shm.scoma import ScomaRegion
        from repro.shm.workloads import (
            bfs_verify,
            bfs_worker,
            init_bfs_region,
            make_graph,
            sequential_bfs,
            vertex_slices,
        )

        n = machine.config.n_nodes
        if phase == 0:
            region = ctx["region"] = ScomaRegion(machine)
            adj = ctx["adj"] = make_graph(self.n_vertices, self.degree,
                                          self.seed)
            init_bfs_region(region, self.n_vertices)
            mpi = self._mpi(machine, ctx)
            out = ctx.setdefault("out", {})
            slices = vertex_slices(self.n_vertices, n)
            for rank in local_nodes:
                machine.spawn(rank, bfs_worker, mpi.rank(rank), region,
                              adj, slices[rank].start, slices[rank].stop,
                              out)
            return
        if 0 in local_nodes:
            expected = sequential_bfs(ctx["adj"])
            machine.spawn(0, bfs_verify, ctx["region"], expected,
                          ctx["out"])

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        out = ctx.get("out", {})
        return {"levels": out.get("levels"), "bfs_ok": out.get("bfs_ok"),
                "bad_vertices": out.get("bfs_bad_vertices")}


class HashScenario(_CoherentScenario):
    """Striped-lock shared hash table: phase 0 has every rank insert its
    key set under ticket locks; phase 1 looks every key back up."""

    name = "shm_hash"
    phases = 2

    def __init__(self, keys_per_rank: int = 8, n_buckets: int = 64,
                 stripes: int = 4, lock_mode: str = "switch") -> None:
        self.keys_per_rank = keys_per_rank
        self.n_buckets = n_buckets
        self.stripes = stripes
        # switch mode combines the spinners' now-serving polls in the
        # network — the endpoint path melts down past ~8 contenders
        self.lock_mode = lock_mode

    def _table(self, machine, ctx):
        from repro.shm.scoma import ScomaRegion
        from repro.shm.workloads import SharedHashTable

        if "table" not in ctx:
            region = ScomaRegion(machine)
            region.init_data(0, bytes(self.n_buckets * region.line_bytes))
            group = machine.sync_fabric().group(
                range(machine.config.n_nodes), mode=self.lock_mode)
            locks = [group.ticket_lock(cell=2 * s)
                     for s in range(self.stripes)]
            ctx["table"] = SharedHashTable(region, self.n_buckets, locks)
        return ctx["table"]

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.shm.workloads import hash_keys_for_rank, hash_value_of

        table = self._table(machine, ctx)
        if phase == 0:
            inserted = ctx.setdefault("inserted", {})

            def writer(api, rank):
                ok = True
                for key in hash_keys_for_rank(rank, self.keys_per_rank):
                    done = yield from table.insert(api, rank, key,
                                                   hash_value_of(key))
                    ok = ok and done
                inserted[rank] = ok

            for rank in local_nodes:
                machine.spawn(rank, writer, rank)
            return
        found = ctx.setdefault("found", {})

        def reader(api, rank):
            ok = True
            for key in hash_keys_for_rank(rank, self.keys_per_rank):
                value = yield from table.lookup(api, key)
                ok = ok and value == hash_value_of(key)
            found[rank] = ok

        for rank in local_nodes:
            machine.spawn(rank, reader, rank)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        return {"inserted": ctx.get("inserted", {}),
                "found": ctx.get("found", {})}


class PatternScenario(_CoherentScenario):
    """One sharing-pattern kernel (see
    :func:`repro.shm.workloads.pattern_worker`): every rank runs
    ``rounds`` rounds of the pattern's access mix; the result is the
    aggregate ns-per-access — the ``bench_shm`` sweep's data point."""

    name = "shm_patterns"
    phases = 1

    def __init__(self, pattern: str = "hotspot", rounds: int = 6) -> None:
        self.pattern = pattern
        self.rounds = rounds

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.shm.scoma import ScomaRegion
        from repro.shm.workloads import pattern_worker

        n = machine.config.n_nodes
        region = ctx["region"] = ScomaRegion(machine)
        # line 0 is the shared line; each rank's private line follows
        region.init_data(0, bytes((n + 1) * region.line_bytes))
        mpi = self._mpi(machine, ctx)
        out = ctx.setdefault("out", {})
        for rank in local_nodes:
            machine.spawn(rank, pattern_worker, mpi.rank(rank), region,
                          self.pattern, rank, n, self.rounds, out)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        from repro.shm.workloads import pattern_ns_per_access

        out = ctx.get("out", {})
        return {"pattern": self.pattern,
                "ns_per_access": pattern_ns_per_access(out),
                "ranks": len(out)}


class BurstScenario(ShardScenario):
    """Counting-barrier incast against a shallow sP service queue.

    Every rank enters the barrier at t=0, so the coordinator's service
    queue sees a simultaneous-arrival burst deeper than itself and the
    excess diverts to the miss queue.  On current firmware the diverted
    entries are redelivered and the barrier opens; under the
    ``overflow_drop`` behavior model (:mod:`repro.explore.models`) they
    vanish and the barrier hangs — the deadlock watchdog's business.
    """

    name = "sync_burst"

    def __init__(self, queue_depth: int = 2) -> None:
        self.queue_depth = queue_depth

    def prepare(self, config: MachineConfig) -> None:
        if config.shards > 1:
            raise ConfigError(
                f"scenario {self.name!r} requires shards=1 (the barrier "
                f"group spans every node)")
        config.niu.queue_depth = self.queue_depth

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        n = machine.config.n_nodes
        bar = machine.sync_fabric().group(
            range(n), mode="endpoint").barrier(variant="counting")
        done = ctx.setdefault("done", {})

        def prog(api, rank):
            yield from bar.wait(api, rank)
            done[rank] = True

        for rank in local_nodes:
            machine.spawn(rank, prog, rank)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        done = ctx.get("done", {})
        return {"done": dict(sorted(done.items())),
                "all_released": len(done) == machine.config.n_nodes}


class TakeoverScenario(_CoherentScenario):
    """Home-node stores racing a remote exclusive takeover of the line.

    Phase 0: rank 0 (the home) streams single-byte stores into line 0
    while rank 1 grabs exclusive ownership mid-stream; phase 1 reads the
    line back.  Every byte has a single writer, so ``ok`` means no store
    was lost.  On current firmware the grant path revokes-then-FLUSHes;
    under the ``kill_grant`` behavior model it snapshots-then-KILLs and
    a Modified home store can vanish.
    """

    name = "shm_takeover"
    phases = 2

    def __init__(self, stores: int = 8, gap_ns: float = 150.0,
                 steal_ns: float = 700.0) -> None:
        self.stores = stores
        self.gap_ns = gap_ns
        self.steal_ns = steal_ns

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.shm.scoma import ScomaRegion

        if machine.config.n_nodes < 2:
            raise ConfigError("shm_takeover needs at least 2 nodes")
        if phase == 0:
            region = ctx["region"] = ScomaRegion(machine, n_lines=8)
            region.init_data(0, bytes(region.line_bytes))

            def home_writer(api):
                for i in range(self.stores):
                    yield from api.store(region.addr(i), bytes([0xA0 + i]))
                    yield from api.sleep(self.gap_ns)

            def thief(api):
                yield from api.sleep(self.steal_ns)
                yield from api.store(region.addr(self.stores), b"\xbb")

            if 0 in local_nodes:
                machine.spawn(0, home_writer)
            if 1 in local_nodes:
                machine.spawn(1, thief)
            return
        if 0 in local_nodes:
            region = ctx["region"]

            def reader(api):
                got = yield from api.load(region.addr(0), self.stores + 1)
                ctx["got"] = bytes(got)

            machine.spawn(0, reader)

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        want = bytes(0xA0 + i for i in range(self.stores)) + b"\xbb"
        got = ctx.get("got", b"")
        return {"ok": got == want, "got": got.hex(), "want": want.hex()}


_REGISTRY = {
    PingScenario.name: PingScenario,
    MixedScenario.name: MixedScenario,
    SyncScenario.name: SyncScenario,
    ChaosScenario.name: ChaosScenario,
    GraphScenario.name: GraphScenario,
    HashScenario.name: HashScenario,
    PatternScenario.name: PatternScenario,
    BurstScenario.name: BurstScenario,
    TakeoverScenario.name: TakeoverScenario,
}


def _ensure_traffic_scenarios() -> None:
    """Merge the traffic scenarios in on first lookup (lazy: the traffic
    package imports ShardScenario from here, so an eager import would be
    circular)."""
    if "traffic_kv" in _REGISTRY:
        return
    from repro.traffic.scenarios import TRAFFIC_SCENARIOS

    _REGISTRY.update(TRAFFIC_SCENARIOS)


def scenario(name: str, **kwargs: Any) -> ShardScenario:
    """Instantiate a registered scenario by name."""
    _ensure_traffic_scenarios()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def scenario_names() -> List[str]:
    _ensure_traffic_scenarios()
    return sorted(_REGISTRY)
