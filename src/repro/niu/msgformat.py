"""Message wire/SRAM format.

A message occupies one queue entry in the dual-ported SRAM: an 8-byte
header followed by up to 88 bytes of payload (the Basic message cap —
chosen so header + payload exactly fills one 96-byte Arctic packet).

Transmit header layout (big-endian, 8 bytes):

====  =======================================================
byte  meaning
====  =======================================================
0     flags: bit0 RAW, bit1 TAGON, bit2 EXPRESS
1     virtual destination (vdst) — or physical node if RAW
2     destination logical rx queue (RAW mode only; otherwise
      the translation table supplies it)
3     payload length in bytes (0..88)
4-5   TagOn source offset in 8-byte units; top bit selects the
      SRAM bank (0 = aSRAM, 1 = sSRAM)
6     TagOn length in 16-byte units (3 -> 48 B = 1.5 lines,
      5 -> 80 B = 2.5 lines)
7     source node (stamped by hardware at transmit)
====  =======================================================

Receive entries reuse the same 8-byte shape with the source node in
byte 1 and flags/length preserved, so user code decodes one format.

Node numbers above one byte (machines past 256 nodes) use *wide*
addressing: flag bit3 (WIDE) repurposes the TagOn bytes for the high
halves — tx carries vdst high in byte 4 and source high in byte 6, rx
carries source high in byte 4.  Wide is RAW-only and mutually exclusive
with TagOn; the encoders set and strip the flag themselves.

One message must fit one packet: ``payload + tagon <= 88``.  This is the
model's (documented) simplification — see DESIGN.md §2; it is exact for
every mechanism the paper exercises (Express+TagOn = 5+80 <= 88; block
transfer command packets = 8+80 <= 88).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import QueueError

HEADER_BYTES = 8
MAX_PAYLOAD = 88
#: one queue entry in SRAM: header + max payload.
ENTRY_BYTES = HEADER_BYTES + MAX_PAYLOAD

FLAG_RAW = 0x01
FLAG_TAGON = 0x02
FLAG_EXPRESS = 0x04
#: wide addressing: node numbers above one byte.  RAW-only and mutually
#: exclusive with TagOn — the high bytes ride in the TagOn fields (tx:
#: vdst high in byte 4, source high in byte 6; rx: source high in byte
#: 4), so the entry stays 8 bytes.  Set/cleared by the encoders; user
#: code never passes it.
FLAG_WIDE = 0x08

#: widest node number any header can carry (wide mode: 16-bit ids).
MAX_NODE = 0xFFFF

#: TagOn length codes, in 16-byte units (1.5 and 2.5 cache lines).
TAGON_SMALL_UNITS = 3  # 48 bytes
TAGON_LARGE_UNITS = 5  # 80 bytes
TAGON_UNIT_BYTES = 16


@dataclass
class MsgHeader:
    """Decoded transmit-side message header."""

    flags: int = 0
    vdst: int = 0
    dst_queue: int = 0
    length: int = 0
    tagon_offset: int = 0  # byte offset inside the source bank
    tagon_bank: int = 0  # 0 = aSRAM, 1 = sSRAM
    tagon_units: int = 0  # 16-byte units
    src_node: int = 0

    @property
    def is_raw(self) -> bool:
        """True when the header bypasses destination translation."""
        return bool(self.flags & FLAG_RAW)

    @property
    def is_wide(self) -> bool:
        """True when a node number needs the second (wide) byte."""
        return self.vdst > 0xFF or self.src_node > 0xFF

    @property
    def has_tagon(self) -> bool:
        """True when SRAM data is appended at transmit time."""
        return bool(self.flags & FLAG_TAGON)

    @property
    def tagon_bytes(self) -> int:
        """Size of the TagOn attachment in bytes."""
        return self.tagon_units * TAGON_UNIT_BYTES if self.has_tagon else 0

    def validate(self) -> None:
        """Reject headers the hardware could never emit."""
        if not (0 <= self.length <= MAX_PAYLOAD):
            raise QueueError(f"payload length {self.length} outside 0..{MAX_PAYLOAD}")
        if not (0 <= self.vdst <= 255):
            if not (0 <= self.vdst <= MAX_NODE):
                raise QueueError(f"vdst {self.vdst} outside two bytes")
            if not self.is_raw:
                raise QueueError(
                    f"vdst {self.vdst} outside one byte (translated "
                    f"addressing caps at 256 nodes; use RAW)"
                )
            if self.has_tagon:
                raise QueueError(
                    "wide addressing and TagOn are mutually exclusive "
                    "(they share header bytes)"
                )
        if not (0 <= self.src_node <= MAX_NODE):
            raise QueueError(f"source node {self.src_node} outside two bytes")
        if self.has_tagon:
            if self.tagon_units not in (TAGON_SMALL_UNITS, TAGON_LARGE_UNITS):
                raise QueueError(
                    f"TagOn units must be {TAGON_SMALL_UNITS} or "
                    f"{TAGON_LARGE_UNITS}, got {self.tagon_units}"
                )
            if self.tagon_offset % 8:
                raise QueueError("TagOn data must be 8-byte aligned in SRAM")
        if self.length + self.tagon_bytes > MAX_PAYLOAD:
            raise QueueError(
                f"payload {self.length} + TagOn {self.tagon_bytes} exceeds "
                f"the {MAX_PAYLOAD}-byte packet payload"
            )


def encode_header(h: MsgHeader) -> bytes:
    """Pack a :class:`MsgHeader` into its 8 SRAM bytes."""
    h.validate()
    if h.is_wide:
        return bytes(
            [
                (h.flags | FLAG_WIDE) & 0xFF,
                h.vdst & 0xFF,
                h.dst_queue & 0xFF,
                h.length & 0xFF,
                (h.vdst >> 8) & 0xFF,
                0,
                (h.src_node >> 8) & 0xFF,
                h.src_node & 0xFF,
            ]
        )
    off_units = h.tagon_offset // 8
    if not (0 <= off_units < 0x8000):
        raise QueueError(f"TagOn offset {h.tagon_offset:#x} unencodable")
    word45 = off_units | (0x8000 if h.tagon_bank else 0)
    return bytes(
        [
            h.flags & 0xFF,
            h.vdst & 0xFF,
            h.dst_queue & 0xFF,
            h.length & 0xFF,
            (word45 >> 8) & 0xFF,
            word45 & 0xFF,
            h.tagon_units & 0xFF,
            h.src_node & 0xFF,
        ]
    )


def decode_header(raw: bytes) -> MsgHeader:
    """Unpack 8 SRAM bytes into a :class:`MsgHeader`."""
    if len(raw) != HEADER_BYTES:
        raise QueueError(f"header must be {HEADER_BYTES} bytes, got {len(raw)}")
    if raw[0] & FLAG_WIDE:
        return MsgHeader(
            flags=raw[0] & ~FLAG_WIDE,
            vdst=raw[1] | (raw[4] << 8),
            dst_queue=raw[2],
            length=raw[3],
            src_node=raw[7] | (raw[6] << 8),
        )
    word45 = (raw[4] << 8) | raw[5]
    return MsgHeader(
        flags=raw[0],
        vdst=raw[1],
        dst_queue=raw[2],
        length=raw[3],
        tagon_offset=(word45 & 0x7FFF) * 8,
        tagon_bank=1 if (word45 & 0x8000) else 0,
        tagon_units=raw[6],
        src_node=raw[7],
    )


def encode_rx_header(
    src_node: int, length: int, flags: int = 0
) -> bytes:
    """Receive-side entry header written by CTRL on message arrival."""
    if not (0 <= length <= MAX_PAYLOAD):
        raise QueueError(f"rx length {length} outside 0..{MAX_PAYLOAD}")
    if not (0 <= src_node <= MAX_NODE):
        raise QueueError(f"source node {src_node} outside two bytes")
    if src_node > 0xFF:
        return bytes([(flags | FLAG_WIDE) & 0xFF, src_node & 0xFF, 0,
                      length & 0xFF, (src_node >> 8) & 0xFF, 0, 0, 0])
    return bytes([flags & 0xFF, src_node & 0xFF, 0, length & 0xFF, 0, 0, 0, 0])


def decode_rx_header(raw: bytes) -> Tuple[int, int, int]:
    """Return ``(src_node, length, flags)`` from a receive entry header."""
    if len(raw) != HEADER_BYTES:
        raise QueueError(f"header must be {HEADER_BYTES} bytes, got {len(raw)}")
    if raw[0] & FLAG_WIDE:
        return raw[1] | (raw[4] << 8), raw[3], raw[0] & ~FLAG_WIDE
    return raw[1], raw[3], raw[0]
