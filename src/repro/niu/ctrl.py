"""CTRL: the core NIU ASIC (communication layer 2).

CTRL owns the protected multi-queue message abstraction:

* 16 hardware transmit and 16 hardware receive queues (buffer space in
  the dual-ported SRAMs, control state in here);
* pointer-triggered transmit launch and receive posting, with pointer
  shadows written back into SRAM so processors can poll cheaply;
* destination translation through the sSRAM table, with per-queue AND/OR
  protection masks, and queue shutdown + firmware interrupt on violation;
* receive-queue caching over a large logical namespace with a
  firmware-serviced miss/overflow queue;
* two local command queues and one remote command queue (processors live
  in :mod:`repro.niu.cmdproc`);
* the IBus — "the central communication path of the NIU" — which almost
  all data crosses at least once, modeled as an arbitrated resource;
* transmit-queue priority arbitration via system registers.

The aBIU/sBIU FPGAs and sP firmware drive CTRL through the narrow
interfaces below, mirroring the paper's "BIUs can request CTRL to write
data to SRAM, and ... update and read CTRL's internal state", which
"surprisingly ... provide access to most of the core functions".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import (
    NetworkError,
    ProtectionViolation,
    QueueError,
    TranslationError,
)
from repro.mem.sram import PORT_IBUS, DualPortedSRAM
from repro.net.packet import PRIORITY_HIGH, PRIORITY_LOW, Packet, PacketKind
from repro.niu.commands import Command, CommandQueue, REMOTE_CMDQ, REMOTE_CMDQ_HIGH
from repro.niu.msgformat import HEADER_BYTES, MsgHeader, decode_header, encode_rx_header
from repro.niu.queues import BANK_A, BANK_S, FullPolicy, QueueKind, QueueState
from repro.niu.sysregs import SystemRegisters
from repro.niu.translation import RxQueueCache, TranslationTable
from repro.sim.resource import Resource
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import NetworkPort
    from repro.sim.engine import Engine
    from repro.sim.events import Event
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer


class Ctrl:
    """The CTRL ASIC of one node's NIU."""

    def __init__(
        self,
        engine: "Engine",
        config: MachineConfig,
        node_id: int,
        asram: DualPortedSRAM,
        ssram: DualPortedSRAM,
        net_port: Optional["NetworkPort"],
        table_base: int,
        stats: "StatsRegistry",
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.asram = asram
        self.ssram = ssram
        self.net_port = net_port
        self.stats = stats
        self.tracer = tracer
        self.name = f"ctrl{node_id}"
        ncfg = config.niu

        #: IBus — arbitrated central data path.
        self.ibus = Resource(engine, 1, name=f"{self.name}.ibus")
        self.sysregs = SystemRegisters()
        self.table = TranslationTable(ssram, table_base, entries=256)
        self.rx_cache = RxQueueCache(ncfg.n_hw_rx_queues, ncfg.n_logical_rx_queues)

        self.tx_queues: List[QueueState] = []
        self.rx_queues: List[QueueState] = []
        self.miss_queue = Store(engine, capacity=ncfg.missq_depth,
                                name=f"{self.name}.missq")
        self.cmdqs = [
            CommandQueue(engine, ncfg.cmdq_depth, name=f"{self.name}.cmdq{i}")
            for i in range(4)
        ]
        #: hardware FIFO between the IBus and the TxU (network side).
        self.tx_fifo = Store(engine, capacity=4, name=f"{self.name}.txfifo")

        #: set by the NIU assembly: aBIU master hook and sP event sink.
        self.abiu_issue: Optional[Callable[..., Any]] = None
        self.post_sp_event: Callable[[Tuple], None] = lambda ev: None
        #: clsSRAM (set when S-COMA support is configured).
        self.cls = None
        #: set by fault injection when this node dies: the NIU sinks all
        #: arriving traffic (the fabric sees a dead node, not a wedged one).
        self.crashed = False

        self._tx_work: Optional["Event"] = None
        self._rx_space: Dict[int, "Event"] = {}
        #: per-rx-queue landing serialization (see :meth:`deliver`).
        self._rx_landing: Dict[int, Resource] = {}
        self._tx_rr = 0
        self._started = False

        for q in range(ncfg.n_hw_tx_queues):
            self.sysregs.define(f"tx_priority.{q}", 0)
            self.sysregs.on_write(f"tx_priority.{q}", self._on_priority_write)

    # ------------------------------------------------------------------
    # queue installation (NIU assembly / firmware configuration path)
    # ------------------------------------------------------------------

    def add_tx_queue(self, bank: int, base: int, depth: int) -> QueueState:
        """Install the next hardware transmit queue over SRAM buffer space."""
        idx = len(self.tx_queues)
        if idx >= self.config.niu.n_hw_tx_queues:
            raise QueueError("all hardware tx queues are in use")
        q = QueueState(QueueKind.TX, idx, bank, base, depth)
        q.shadow_offset = None
        self.tx_queues.append(q)
        return q

    def add_rx_queue(self, bank: int, base: int, depth: int,
                     logical_id: int) -> QueueState:
        """Install the next hardware receive queue, bound to a logical id."""
        idx = len(self.rx_queues)
        if idx >= self.config.niu.n_hw_rx_queues:
            raise QueueError("all hardware rx queues are in use")
        q = QueueState(QueueKind.RX, idx, bank, base, depth)
        q.shadow_offset = None
        q.logical_id = logical_id
        self.rx_queues.append(q)
        self.rx_cache.bind(logical_id, idx)
        return q

    # ------------------------------------------------------------------
    # timing primitives
    # ------------------------------------------------------------------

    @property
    def op_ns(self) -> float:
        """CTRL internal pipeline latency for one operation."""
        return self.config.niu.ctrl_op_cycles * self.config.bus.cycle_ns

    def _bank(self, bank: int) -> DualPortedSRAM:
        return self.asram if bank == BANK_A else self.ssram

    def sram_read(self, bank: int, offset: int, size: int
                  ) -> Generator["Event", None, bytes]:
        """Read SRAM across the IBus (CTRL-mediated, timed)."""
        yield self.ibus.request()
        try:
            yield self.engine.timeout(self.op_ns)
            data = yield from self._bank(bank).read(PORT_IBUS, offset, size)
        finally:
            self.ibus.release()
        return data

    def sram_read_view(self, bank: int, offset: int, size: int
                       ) -> Generator["Event", None, memoryview]:
        """Zero-copy :meth:`sram_read`: same IBus arbitration and timing,
        returns a read-only view of the bank (valid until the range is
        overwritten — materialize before it can be recycled)."""
        yield self.ibus.request()
        try:
            yield self.engine.timeout(self.op_ns)
            data = yield from self._bank(bank).read_view(PORT_IBUS, offset, size)
        finally:
            self.ibus.release()
        return data

    def sram_write(self, bank: int, offset: int, data: bytes
                   ) -> Generator["Event", None, None]:
        """Write SRAM across the IBus (CTRL-mediated, timed)."""
        yield self.ibus.request()
        try:
            yield self.engine.timeout(self.op_ns)
            yield from self._bank(bank).write(PORT_IBUS, offset, data)
        finally:
            self.ibus.release()

    def sram_write_parts(self, bank: int, offset: int, parts: Tuple[bytes, ...]
                         ) -> Generator["Event", None, None]:
        """Scatter-gather :meth:`sram_write`: timing-identical to writing
        the concatenation, without building it."""
        yield self.ibus.request()
        try:
            yield self.engine.timeout(self.op_ns)
            yield from self._bank(bank).write_parts(PORT_IBUS, offset, parts)
        finally:
            self.ibus.release()

    # ------------------------------------------------------------------
    # pointer interface (driven by BIU-decoded bus operations)
    # ------------------------------------------------------------------

    def tx_producer_update(self, idx: int, new: int) -> None:
        """A composed message is ready: advance the producer, wake transmit."""
        q = self._tx(idx)
        if not q.enabled:
            raise ProtectionViolation(f"txQ{idx} is shut down")
        q.advance_producer(new)
        self._kick_tx()

    def rx_consumer_update(self, idx: int, new: int) -> None:
        """The processor drained entries: free buffer space."""
        q = self._rx(idx)
        q.advance_consumer(new)
        ev = self._rx_space.pop(idx, None)
        if ev is not None and not ev.triggered:
            ev.succeed()

    def read_pointer(self, kind: QueueKind, idx: int, which: str) -> int:
        """Immediate pointer read (sP immediate interface; BIUs use shadows)."""
        q = self._tx(idx) if kind is QueueKind.TX else self._rx(idx)
        return q.producer if which == "producer" else q.consumer

    def _tx(self, idx: int) -> QueueState:
        if not (0 <= idx < len(self.tx_queues)):
            raise QueueError(f"no tx queue {idx}")
        return self.tx_queues[idx]

    def _rx(self, idx: int) -> QueueState:
        if not (0 <= idx < len(self.rx_queues)):
            raise QueueError(f"no rx queue {idx}")
        return self.rx_queues[idx]

    def _on_priority_write(self, name: str, value: int) -> None:
        idx = int(name.rsplit(".", 1)[1])
        if idx < len(self.tx_queues):
            self.tx_queues[idx].priority = value

    # ------------------------------------------------------------------
    # transmit engine
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn CTRL's internal engines (tx arbiter, TxU, rx pumps)."""
        if self._started:
            return
        self._started = True
        self.engine.process(self._tx_engine(), name=f"{self.name}.tx", daemon=True)
        self.engine.process(self._txu(), name=f"{self.name}.txu", daemon=True)
        if self.net_port is not None:
            for pri in range(self.config.network.priorities):
                self.engine.process(self._rx_pump(pri), name=f"{self.name}.rx{pri}",
                                    daemon=True)

    def _kick_tx(self) -> None:
        ev = self._tx_work
        if ev is not None and not ev.triggered:
            ev.succeed()

    def _pick_tx(self) -> Optional[QueueState]:
        """Priority arbitration with round-robin among equals."""
        best: Optional[QueueState] = None
        n = len(self.tx_queues)
        for k in range(n):
            q = self.tx_queues[(self._tx_rr + k) % n]
            if q.enabled and not q.is_empty:
                if best is None or q.priority < best.priority:
                    best = q
        if best is not None:
            self._tx_rr = (best.index + 1) % max(1, n)
        return best

    def _tx_engine(self):
        while True:
            q = self._pick_tx()
            if q is None:
                self._tx_work = self.engine.event(name=f"{self.name}.txwork")
                yield self._tx_work
                self._tx_work = None
                continue
            yield self.engine.timeout(self.op_ns)
            yield from self._send_from_queue(q)

    def _send_from_queue(self, q: QueueState) -> Generator["Event", None, None]:
        tr = self.tracer
        span = (tr.span("niu.tx", source=self.name, node=self.node_id,
                        track=f"txq{q.index}")
                if tr is not None and tr.active else None)
        slot = q.slot_offset(q.consumer)
        raw = yield from self.sram_read_view(q.bank, slot, HEADER_BYTES)
        try:
            hdr = decode_header(raw)
            hdr.validate()
        except QueueError as exc:
            self._violation(q, f"malformed header: {exc}")
            if span is not None:
                span.end(violation=True)
            return
        payload = b""
        if hdr.length:
            # Zero-copy: the payload rides as a view of the queue slot all
            # the way to Packet construction (where it materializes) or to
            # the loopback landing store.  Safe because the slot is not
            # recycled until advance_consumer below, after _transmit.
            payload = yield from self.sram_read_view(
                q.bank, slot + HEADER_BYTES, hdr.length
            )
        yield from self._transmit(q, hdr, payload)
        if q.enabled:
            q.advance_consumer(q.consumer + 1)
            q.messages += 1
            yield from self._shadow(q)
        if span is not None:
            span.end(bytes=hdr.length)

    def _transmit(
        self, q: QueueState, hdr: MsgHeader, payload: bytes
    ) -> Generator["Event", None, None]:
        """Translate, apply protection, pick up TagOn, and emit.

        Shared by the transmit engine and the command-stream send path
        (CmdSendMessage), because the hardware genuinely shares it.
        """
        if hdr.is_raw:
            if not q.allow_raw:
                self._violation(q, "raw message from a translated queue")
                return
            dst_node, dst_queue, pri = hdr.vdst, hdr.dst_queue, PRIORITY_LOW
        elif not q.translate:
            dst_node, dst_queue, pri = hdr.vdst, hdr.dst_queue, PRIORITY_LOW
        else:
            index = q.translate_vdst(hdr.vdst)
            try:
                # the table entry crosses the IBus like any SRAM read;
                # timing only (lookup below decodes the same bytes), so a
                # view avoids the copy entirely
                entry_raw = yield from self.sram_read_view(
                    BANK_S, self.table._offset(index), 8
                )
                del entry_raw
                entry = self.table.lookup(index)
            except TranslationError as exc:
                self._violation(q, str(exc))
                return
            dst_node, dst_queue, pri = entry.dst_node, entry.dst_queue, entry.priority
        if hdr.has_tagon:
            tag = yield from self.sram_read_view(
                hdr.tagon_bank, hdr.tagon_offset, hdr.tagon_bytes
            )
            # gathering two SRAM regions into one payload is the one
            # unavoidable copy on the TagOn path (join accepts views)
            payload = b"".join((payload, tag))
        hdr.src_node = self.node_id
        self.stats.counter(f"{self.name}.msgs_sent").incr()
        yield from self._emit_data(dst_node, dst_queue, payload, pri)

    def _emit_data(
        self, dst_node: int, dst_queue: int, payload: bytes, priority: int
    ) -> Generator["Event", None, None]:
        if dst_node == self.node_id:
            # CTRL loopback: no network involvement
            yield self.engine.timeout(self.op_ns)
            yield from self.deliver(dst_queue, self.node_id, payload)
            return
        route = self._route_or_drop(dst_node)
        if route is None:
            return
        pkt = Packet(
            PacketKind.DATA,
            src=self.node_id,
            dst=dst_node,
            dst_queue=dst_queue,
            payload=payload,
            priority=priority,
            route=route,
            header_bytes=self.config.network.header_bytes,
        )
        yield self.tx_fifo.put(pkt)

    def emit_command(
        self, dst_node: int, command: Command, priority: int = PRIORITY_LOW
    ) -> Generator["Event", None, None]:
        """Send a command to a (possibly remote) NIU's remote command queue."""
        if dst_node == self.node_id:
            yield self.engine.timeout(self.op_ns)
            which = REMOTE_CMDQ_HIGH if priority == PRIORITY_HIGH else REMOTE_CMDQ
            yield self.cmdqs[which].enqueue(command)
            return
        route = self._route_or_drop(dst_node)
        if route is None:
            return
        pkt = Packet(
            PacketKind.COMMAND,
            src=self.node_id,
            dst=dst_node,
            dst_queue=0,
            payload=b"",
            priority=priority,
            route=route,
            command=command,
            header_bytes=self.config.network.header_bytes,
        )
        yield self.tx_fifo.put(pkt)

    def emit_sync(self, tag) -> Generator["Event", None, None]:
        """Inject one sync-tagged packet (in-network computing request).

        Tagged packets carry no source route — the first switch's
        combining stage consumes them (see :mod:`repro.net.combine`) —
        and travel high priority so congested bulk traffic cannot delay
        a combining window.  They share the TX FIFO with ordinary
        traffic: a sync request still queues behind the data packets the
        aP already posted, exactly like the real NIU's single injection
        port.
        """
        pkt = Packet(
            PacketKind.DATA,
            src=self.node_id,
            dst=self.node_id,
            dst_queue=tag.reply_queue,
            payload=tag.pack(),
            priority=PRIORITY_HIGH,
            header_bytes=self.config.network.header_bytes,
            sync=tag,
        )
        self.stats.counter(f"{self.name}.sync_injects").incr()
        yield self.tx_fifo.put(pkt)

    def _route(self, dst_node: int) -> List[int]:
        assert self.net_port is not None, "no network attached"
        return self.net_port.network.route(self.node_id, dst_node)

    def _route_or_drop(self, dst_node: int) -> Optional[List[int]]:
        """Route to ``dst_node``, or ``None`` when downed links have
        partitioned it away — the message is silently lost exactly like a
        packet on a dead wire (the reliability firmware's problem), but
        only when faults are actually in play; a healthy network still
        raises on nonsense destinations."""
        net = self.net_port.network
        try:
            return self._route(dst_node)
        except NetworkError:
            if not net.down_links:
                raise
            self.stats.counter(f"{self.name}.tx_unroutable").incr()
            return None

    def _txu(self):
        """TxU: drain the hardware FIFO into the network."""
        while True:
            pkt = yield self.tx_fifo.get()
            yield from self.net_port.inject(pkt)

    def _violation(self, q: QueueState, reason: str) -> None:
        """Protection response: shut the queue down, interrupt firmware."""
        q.shutdown()
        self.stats.counter(f"{self.name}.protection_violations").incr()
        self.post_sp_event(("protection", q.kind.value, q.index, reason))

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------

    def _rx_pump(self, priority: int):
        """RxU: drain one network priority into queues / the remote cmdq."""
        while True:
            pkt: Packet = yield self.net_port.receive(priority)
            yield self.engine.timeout(self.op_ns)
            if self.crashed:
                self._rx_drop(pkt.dst_queue, "crashed")
                continue
            if not pkt.verify_checksum():
                # wire corruption: detected here, counted, dropped.  The
                # real Arctic CRC-checks per packet; recovery is firmware's
                # job (the ack/retransmit protocol sees it as a loss).
                self._rx_drop(pkt.dst_queue, "corrupt")
                continue
            if pkt.kind is PacketKind.COMMAND:
                if pkt.command is not None:
                    pkt.command._src_node = pkt.src  # type: ignore[attr-defined]
                which = (REMOTE_CMDQ_HIGH if priority == PRIORITY_HIGH
                         else REMOTE_CMDQ)
                yield self.cmdqs[which].enqueue(pkt.command)
            else:
                yield from self.deliver(pkt.dst_queue, pkt.src, pkt.payload)

    def deliver(
        self, logical_q: int, src_node: int, payload: bytes, flags: int = 0
    ) -> Generator["Event", None, None]:
        """Post one message into a logical receive queue.

        Performs the cache-tag-style residency lookup; misses and
        overflow divert to the firmware-serviced miss queue.
        """
        tr = self.tracer
        span = (tr.span("niu.rx", source=self.name, node=self.node_id,
                        track=f"rxq{logical_q}", src=src_node)
                if tr is not None and tr.active else None)
        slot = self.rx_cache.lookup(logical_q)
        if slot is None:
            yield from self._to_missq(("miss", logical_q, src_node,
                                       bytes(payload), flags))
            if span is not None:
                span.end(outcome="miss")
            return
        q = self.rx_queues[slot]
        if not q.enabled:
            # protection shut this queue down; arrivals bounce until
            # software re-arms it
            q.drops += 1
            self._rx_drop(logical_q, "shutdown")
            if span is not None:
                span.end(outcome="shutdown")
            return
        # One landing engine per queue: from the fullness check to the
        # producer advance, exactly one delivery may be in flight.  Two
        # deliverers woken by the same freed slot would otherwise both
        # read q.producer before either advances it — one message lands
        # on top of the other and the next slot exposes a stale entry
        # from the previous ring lap.
        lock = self._rx_landing.get(slot)
        if lock is None:
            lock = self._rx_landing[slot] = Resource(
                self.engine, 1, name=f"{self.name}.rxland{slot}")
        yield lock.request()
        try:
            while q.is_full:
                if q.full_policy is FullPolicy.DROP:
                    q.drops += 1
                    self._rx_drop(logical_q, "full")
                    if span is not None:
                        span.end(outcome="drop")
                    return
                if q.full_policy is FullPolicy.DIVERT:
                    yield from self._to_missq(
                        ("overflow", logical_q, src_node, bytes(payload),
                         flags)
                    )
                    if span is not None:
                        span.end(outcome="overflow")
                    return
                # BLOCK: wait for the consumer to free space (can deadlock
                # the network — the paper says as much; that is the
                # experiment)
                ev = self._rx_space.get(slot)
                if ev is None or ev.triggered:
                    ev = self.engine.event(name=f"{self.name}.rxspace{slot}")
                    self._rx_space[slot] = ev
                yield ev
            # Landing store: scatter-gather [header, payload] straight into
            # the queue slot — the payload (possibly still a view of the
            # sender's SRAM on the loopback path) is copied exactly here and
            # nowhere earlier.  Timing-identical to writing the
            # concatenation.
            header = encode_rx_header(src_node, len(payload), flags)
            yield from self.sram_write_parts(
                q.bank, q.slot_offset(q.producer), (header, payload)
            )
            q.advance_producer(q.producer + 1)
        finally:
            lock.release()
        q.messages += 1
        self.stats.counter(f"{self.name}.msgs_delivered").incr()
        yield from self._shadow(q)
        if span is not None:
            span.end(bytes=len(payload))
        if q.interrupt_on_arrival:
            self.post_sp_event(("rxmsg", slot, q.logical_id))

    def _rx_drop(self, logical_q: int, reason: str) -> None:
        """Account one rx drop: which logical queue lost it, and why
        (``full`` / ``shutdown`` / ``corrupt`` / ``crashed``)."""
        self.stats.counter(f"{self.name}.rx_drops.q{logical_q}.{reason}").incr()
        tr = self.tracer
        if tr is not None and tr.active:
            tr.instant("niu.rx_drop", source=self.name, node=self.node_id,
                       track=f"rxq{logical_q}", reason=reason)

    def _to_missq(self, item: Tuple) -> Generator["Event", None, None]:
        self.stats.counter(f"{self.name}.rx_missq").incr()
        yield self.miss_queue.put(item)
        self.post_sp_event(("missq",))

    # ------------------------------------------------------------------
    # pointer shadows
    # ------------------------------------------------------------------

    def _shadow(self, q: QueueState) -> Generator["Event", None, None]:
        """Write the queue's pointers back into SRAM for cheap polling."""
        if q.shadow_offset is None:
            return
        raw = (q.producer & 0xFFFFFFFF).to_bytes(4, "big") + (
            q.consumer & 0xFFFFFFFF
        ).to_bytes(4, "big")
        yield from self.sram_write(q.bank, q.shadow_offset, raw)

    def read_shadow(self, q: QueueState) -> Tuple[int, int]:
        """Untimed decode of a queue's SRAM pointer shadow (BIU serves the
        actual bus operation and charges its timing)."""
        if q.shadow_offset is None:
            raise QueueError(f"queue {q!r} has no shadow")
        raw = self._bank(q.bank).peek(q.shadow_offset, 8)
        return int.from_bytes(raw[:4], "big"), int.from_bytes(raw[4:], "big")
