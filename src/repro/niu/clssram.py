"""clsSRAM: cache-line state bits and the aBIU action table.

A single-ported SRAM holding four state bits per cache line of a covered
DRAM window.  "The clsSRAM is read for every aP bus operation and [the
bits] are passed to the aBIU ... The aBIU determines what action, if
any, should be taken ... Two bits encode the possible reactions: one bit
indicates whether the operation should be retried and the other bit
specifies whether the operation should be passed to the sP.  These bits
are in a table indexed by the bus operation and the clsSRAM bits."

Four state bits allow sixteen states — enough for "multiple coherence
protocols simultaneously or very complex coherence protocols".  The
default S-COMA protocol uses four of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bus.ops import BusOpType
from repro.coherence.protocol import (
    MSI_INVALID,
    MSI_PENDING,
    MSI_RO,
    MSI_RW,
)
from repro.common.errors import AddressError, ConfigError

#: default S-COMA line states (values are the 4-bit clsSRAM contents);
#: canonically defined by :mod:`repro.coherence.protocol`, re-exported
#: here under their historical hardware-facing names.
CLS_INVALID = MSI_INVALID  #: line not present locally — fetch required
CLS_PENDING = MSI_PENDING  #: fetch in flight — retry, don't re-notify
CLS_RO = MSI_RO  #: readable copy present
CLS_RW = MSI_RW  #: writable (owned) copy present


@dataclass(frozen=True)
class ClsAction:
    """The aBIU's reaction to one (bus op, state) pair."""

    retry: bool = False
    pass_to_sp: bool = False
    #: new state the aBIU writes back as it reacts (None = leave as is);
    #: this is how INVALID flips to PENDING exactly once per miss.
    next_state: int = None  # type: ignore[assignment]


class ClsSram:
    """State bits for a window of DRAM, plus the reaction table."""

    __slots__ = (
        "cover_base",
        "n_lines",
        "line_bytes",
        "_states",
        "_table",
        "checks",
        "retries",
        "sanitizer",
    )

    def __init__(self, cover_base: int, n_lines: int, line_bytes: int) -> None:
        if n_lines <= 0:
            raise ConfigError("clsSRAM must cover at least one line")
        if cover_base % line_bytes:
            raise ConfigError("clsSRAM coverage must be line-aligned")
        self.cover_base = cover_base
        self.n_lines = n_lines
        self.line_bytes = line_bytes
        self._states = bytearray(n_lines)  # 4-bit values, one per line
        self._table: Dict[Tuple[BusOpType, int], ClsAction] = {}
        self.checks = 0
        self.retries = 0
        #: coherence sanitizer hook (None = checks disabled, zero cost).
        self.sanitizer = None

    # -- coverage -----------------------------------------------------------

    @property
    def cover_end(self) -> int:
        """One past the last covered address."""
        return self.cover_base + self.n_lines * self.line_bytes

    def covers(self, addr: int) -> bool:
        """True when ``addr`` lies in the covered window."""
        return self.cover_base <= addr < self.cover_end

    def line_of(self, addr: int) -> int:
        """Line index of a covered address."""
        if not self.covers(addr):
            raise AddressError(
                f"address {addr:#x} outside clsSRAM coverage "
                f"[{self.cover_base:#x}, {self.cover_end:#x})"
            )
        return (addr - self.cover_base) // self.line_bytes

    def addr_of(self, line: int) -> int:
        """Base address of line ``line``."""
        if not (0 <= line < self.n_lines):
            raise AddressError(f"clsSRAM line {line} out of range")
        return self.cover_base + line * self.line_bytes

    # -- state bits ------------------------------------------------------------

    def state(self, line: int) -> int:
        """Current 4-bit state of a line."""
        if not (0 <= line < self.n_lines):
            raise AddressError(f"clsSRAM line {line} out of range")
        return self._states[line]

    def set_state(self, line: int, state: int, fill: bool = False,
                  cause: str = None) -> None:
        """Write a line's state (firmware commands and Approach-5 hardware).

        ``fill`` marks data-carrying writes — a grant depositing home data
        alongside the state change — so the coherence sanitizer can flag
        fills that would overwrite a locally modified (RW) frame.
        ``cause`` names the protocol step driving the write (a
        :data:`repro.coherence.protocol.CACHE_TABLE` key); the sanitizer
        machine-checks cause-tagged transitions against that table.
        Untagged writes (setup, block-transfer arming, experimental
        protocols) skip the table check.
        """
        if not (0 <= state <= 0xF):
            raise AddressError(f"clsSRAM state {state} needs 4 bits")
        if not (0 <= line < self.n_lines):
            raise AddressError(f"clsSRAM line {line} out of range")
        san = self.sanitizer
        if san is not None:
            san.on_fw_transition(self, line, self._states[line], state, fill,
                                 cause)
        self._states[line] = state

    def set_range(self, first_line: int, n_lines: int, state: int) -> None:
        """Bulk state write (block-operation-unit support)."""
        for line in range(first_line, first_line + n_lines):
            self.set_state(line, state)

    # -- the reaction table ---------------------------------------------------------

    def set_action(self, op: BusOpType, state: int, action: ClsAction) -> None:
        """Program one table slot (this is "reconfiguring the FPGA table")."""
        self._table[(op, state)] = action

    def check(self, op: BusOpType, addr: int) -> ClsAction:
        """The hardware check performed in parallel with every snoop.

        Looks up the line state, consults the table, applies any
        ``next_state`` transition, and returns the action.  Unknown
        (op, state) pairs take no action — the table is "configurable"
        precisely so untouched operations pass through.
        """
        self.checks += 1
        line = self.line_of(addr)
        state = self._states[line]
        action = self._table.get((op, state))
        if action is None:
            return ClsAction()
        if action.next_state is not None:
            san = self.sanitizer
            if san is not None:
                san.on_hw_transition(self, line, state, action.next_state, op)
            self._states[line] = action.next_state
        if action.retry:
            self.retries += 1
        return action


def install_scoma_default_table(cls: ClsSram) -> None:
    """The default S-COMA reaction table.

    Reads of INVALID lines retry and notify firmware once (the state flips
    to PENDING so later retries stay quiet); PENDING retries silently;
    valid states pass.  Writes need RW: RO writes retry and request an
    upgrade; the KILL a store-upgrade emits behaves like the write itself.
    """
    for read_op in (BusOpType.READ, BusOpType.READ_LINE):
        cls.set_action(read_op, CLS_INVALID,
                       ClsAction(retry=True, pass_to_sp=True, next_state=CLS_PENDING))
        cls.set_action(read_op, CLS_PENDING, ClsAction(retry=True))
    for write_op in (BusOpType.WRITE, BusOpType.WRITE_LINE, BusOpType.RWITM,
                     BusOpType.KILL):
        cls.set_action(write_op, CLS_INVALID,
                       ClsAction(retry=True, pass_to_sp=True, next_state=CLS_PENDING))
        cls.set_action(write_op, CLS_PENDING, ClsAction(retry=True))
        cls.set_action(write_op, CLS_RO,
                       ClsAction(retry=True, pass_to_sp=True, next_state=CLS_PENDING))
