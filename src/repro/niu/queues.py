"""CTRL queue state: pointers, buffer geometry, policies.

Buffer space for message queues lives in the dual-ported SRAMs; *control
state* — producer/consumer pointers, masks, permissions, policies — lives
inside CTRL, exactly as the paper describes.  Pointer updates are the
triggers that drive CTRL's transmit and receive engines.

Pointers are monotonically increasing entry counts (the classic
wrap-free formulation): occupancy is ``producer - consumer`` and the SRAM
slot of entry ``n`` is ``base + (n % depth) * entry_bytes``.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.errors import QueueError
from repro.niu.msgformat import ENTRY_BYTES

#: SRAM bank selectors.
BANK_A = 0
BANK_S = 1


class QueueKind(enum.Enum):
    """Transmit or receive."""

    TX = "tx"
    RX = "rx"


class FullPolicy(enum.Enum):
    """What CTRL does with a message bound for a full receive queue.

    The paper lists exactly these options: drop the packet, hold it
    (risking network deadlock), or divert it to the overflow queue.
    """

    DROP = "drop"
    BLOCK = "block"
    DIVERT = "divert"


class QueueState:
    """Control state of one hardware queue slot inside CTRL."""

    __slots__ = (
        "kind",
        "index",
        "bank",
        "base",
        "depth",
        "entry_bytes",
        "producer",
        "consumer",
        "enabled",
        "translate",
        "allow_raw",
        "priority",
        "and_mask",
        "or_mask",
        "logical_id",
        "full_policy",
        "interrupt_on_arrival",
        "owner_pid",
        "shadow_offset",
        "messages",
        "drops",
    )

    def __init__(
        self,
        kind: QueueKind,
        index: int,
        bank: int,
        base: int,
        depth: int,
        entry_bytes: int = ENTRY_BYTES,
    ) -> None:
        if depth < 2 or depth & (depth - 1):
            raise QueueError(f"queue depth must be a power of two >= 2: {depth}")
        if base % 8:
            raise QueueError("queue buffers must be 8-byte aligned in SRAM")
        self.kind = kind
        self.index = index
        self.bank = bank
        self.base = base
        self.depth = depth
        self.entry_bytes = entry_bytes
        self.producer = 0
        self.consumer = 0
        #: queue is usable; protection violations clear this ("shutdown").
        self.enabled = True
        #: destination translation on transmit (disable for trusted raw use).
        self.translate = True
        #: whether RAW-flagged messages are permitted from this queue.
        self.allow_raw = False
        #: transmit arbitration priority (lower wins), set via sysregs.
        self.priority = 0
        #: AND/OR mask applied to the vdst before table lookup (protection:
        #: confines the queue to a slice of the translation table).
        self.and_mask = 0xFF
        self.or_mask = 0x00
        #: receive-side: logical queue id this hw slot is caching.
        self.logical_id: Optional[int] = None
        #: receive-side behaviour.
        self.full_policy = FullPolicy.DIVERT
        self.interrupt_on_arrival = False
        #: owning process tag (protection experiments).
        self.owner_pid = 0
        #: SRAM offset of the pointer shadow (None = not shadowed).
        self.shadow_offset: Optional[int] = None
        # statistics
        self.messages = 0
        self.drops = 0

    # -- geometry -----------------------------------------------------------

    def slot_offset(self, entry_no: int) -> int:
        """SRAM byte offset of entry number ``entry_no``."""
        return self.base + (entry_no % self.depth) * self.entry_bytes

    @property
    def occupancy(self) -> int:
        """Entries currently queued."""
        return self.producer - self.consumer

    @property
    def space(self) -> int:
        """Free entries."""
        return self.depth - self.occupancy

    @property
    def is_empty(self) -> bool:
        """True when no entries are queued."""
        return self.producer == self.consumer

    @property
    def is_full(self) -> bool:
        """True when every slot is occupied."""
        return self.occupancy >= self.depth

    # -- pointer updates ------------------------------------------------------

    def advance_producer(self, new: int) -> int:
        """Move the producer forward to ``new``; returns entries added."""
        added = new - self.producer
        if added < 0:
            raise QueueError(
                f"{self.kind.value}{self.index}: producer moved backwards "
                f"({self.producer} -> {new})"
            )
        if self.occupancy + added > self.depth:
            raise QueueError(
                f"{self.kind.value}{self.index}: producer update overruns "
                f"consumer (occupancy {self.occupancy}+{added} > {self.depth})"
            )
        self.producer = new
        return added

    def advance_consumer(self, new: int) -> int:
        """Move the consumer forward to ``new``; returns entries freed."""
        freed = new - self.consumer
        if freed < 0:
            raise QueueError(
                f"{self.kind.value}{self.index}: consumer moved backwards "
                f"({self.consumer} -> {new})"
            )
        if freed > self.occupancy:
            raise QueueError(
                f"{self.kind.value}{self.index}: consumer passed producer"
            )
        self.consumer = new
        return freed

    def translate_vdst(self, vdst: int) -> int:
        """Apply the protection masks: table index = (vdst AND a) OR o."""
        return (vdst & self.and_mask) | self.or_mask

    def shutdown(self) -> None:
        """Protection response: disable the queue until software re-arms it."""
        self.enabled = False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.kind.value}Q{self.index} p={self.producer} "
            f"c={self.consumer}/{self.depth} {'on' if self.enabled else 'OFF'}>"
        )
