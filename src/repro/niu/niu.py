"""NIU card assembly: one StarT-Voyager network interface unit.

Builds and wires the pieces of Figure 2 of the paper: the CTRL ASIC, the
aBIU and sBIU FPGAs (as handler registries), the embedded service
processor, the dual-ported aSRAM/sSRAM, the clsSRAM, and the TxU/RxU
paths to the Arctic port — then lays out the default queue plan and
installs the default aBIU state machines.

Default queue plan (hardware queues; logical receive ids are per-node):

========= ====== ======================================================
tx queue  bank   use
========= ====== ======================================================
0..3      aSRAM  aP general-purpose (Basic/TagOn messages)
4         aSRAM  aP Express transmit
5         sSRAM  sP firmware general transmit
6         sSRAM  sP firmware protocol transmit (high priority)
========= ====== ======================================================

========= ======= ======== ============================================
rx slot   logical bank     use
========= ======= ======== ============================================
0..3      0..3    aSRAM    aP general-purpose receive
4         4       aSRAM    aP Express receive
5         5       sSRAM    sP service queue (DMA requests, ...)
6         6       sSRAM    sP protocol queue (coherence traffic)
7         7       aSRAM    block-transfer completion notifications
========= ======= ======== ============================================

Virtual destinations follow ``vdst = node*16 + logical_queue`` — the
machine assembly installs translation-table entries for every reachable
(node, queue) pair, and per-queue AND/OR masks can then confine a tx
queue to a node or queue subset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.mem.address import (
    ASRAM_BASE,
    NIU_CTL_BASE,
    NUMA_BASE,
    NUMA_SIZE,
    AccessMode,
    AddressMap,
    Region,
)
from repro.mem.sram import DualPortedSRAM
from repro.niu.abiu import ABiu
from repro.niu.clssram import ClsSram, install_scoma_default_table
from repro.niu.cmdproc import BlockReadUnit, BlockTxUnit, CommandProcessor
from repro.niu.ctrl import Ctrl
from repro.niu.handlers import (
    EXPRESS_WINDOW_BYTES,
    ExpressRxHandler,
    ExpressTxHandler,
    NumaHandler,
    PointerWindowHandler,
    ScomaHandler,
    SramWindowHandler,
    SysregHandler,
)
from repro.niu.msgformat import ENTRY_BYTES
from repro.niu.queues import BANK_A, BANK_S, FullPolicy, QueueState
from repro.niu.sbiu import SBiu
from repro.niu.sp import ServiceProcessor

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.bus import MemoryBus
    from repro.net.network import NetworkPort
    from repro.sim.engine import Engine
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer

# -- queue plan constants ------------------------------------------------------

N_AP_TX = 4
EXPRESS_TX_IDX = 4
SP_TX_GENERAL = 5
SP_TX_PROTOCOL = 6

N_AP_RX = 4
EXPRESS_RX_LOGICAL = 4
SP_SERVICE_QUEUE = 5
SP_PROTOCOL_QUEUE = 6
NOTIFY_QUEUE = 7
#: sP-owned bulk-data queue (Approach-2 chunks land here; firmware reads
#: descriptors only and moves the payload bytes by command).
SP_BULK_QUEUE = 8
#: sP-owned reliable-delivery queue: go-back-N DATA segments from remote
#: reliability firmware land here (acks ride the protocol queue).
SP_REL_QUEUE = 9
#: sP-owned reliable-transmit queue: the aP's reliable-send requests
#: loop back into this queue; firmware drains it only while the go-back-N
#: window has room, so a full window backpressures the aP end to end
#: (kept separate from SP_REL_QUEUE — a stalled local sender must never
#: head-of-line-block incoming DATA, or two windowed peers deadlock).
SP_REL_TX_QUEUE = 10

#: window offsets inside the NIU control area.
PTR_WINDOW_OFF = 0x000000
PTR_WINDOW_SIZE = 0x1000
EXPRESS_TX_OFF = 0x100000
EXPRESS_RX_OFF = 0x200000
EXPRESS_RX_SIZE = 0x1000
SYSREG_OFF = 0x300000
SYSREG_SIZE = 0x1000


def vdst_for(node: int, logical_queue: int) -> int:
    """The virtual-destination byte addressing (node, logical queue)."""
    if not (0 <= node < 16) or not (0 <= logical_queue < 16):
        raise ConfigError(
            "the default vdst convention supports 16 nodes x 16 queues; "
            f"got node {node}, queue {logical_queue}"
        )
    return node * 16 + logical_queue


def needs_raw_addressing(n_nodes: int) -> bool:
    """True when a machine exceeds the byte-vdst translation convention.

    The one-byte vdst field packs ``node*16 + queue``, so translated
    addressing tops out at 16 nodes.  Larger machines run kernel-mode
    RAW addressing instead: the header carries the physical node and
    logical queue directly and the machine assembly marks every tx queue
    ``allow_raw`` (single-job kernel mode — per-queue translation
    protection is a 16-node-scale feature of the model).  Past 256
    nodes the encoders switch the header to wide (16-bit) node numbers
    — see :mod:`repro.niu.msgformat`.
    """
    return n_nodes > 16


class _Bump:
    """Tiny bump allocator for SRAM layout."""

    def __init__(self, size: int, name: str) -> None:
        self.next = 0
        self.size = size
        self.name = name

    def take(self, nbytes: int, align: int = 64) -> int:
        self.next = (self.next + align - 1) & ~(align - 1)
        off = self.next
        self.next += nbytes
        if self.next > self.size:
            raise ConfigError(f"{self.name}: SRAM layout overflow ({self.next} > {self.size})")
        return off


class NIU:
    """One node's complete network interface unit."""

    def __init__(
        self,
        engine: "Engine",
        config: MachineConfig,
        node_id: int,
        bus: "MemoryBus",
        address_map: AddressMap,
        net_port: Optional["NetworkPort"],
        stats: "StatsRegistry",
        dram_scoma_base: int,
        dram_scoma_bytes: int,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.bus = bus
        self.address_map = address_map
        self.stats = stats
        self.tracer = tracer
        ncfg = config.niu
        sram_ns = ncfg.sram_cycles * config.bus.cycle_ns

        self.asram = DualPortedSRAM(engine, ncfg.asram_bytes, sram_ns,
                                    name=f"asram{node_id}")
        self.ssram = DualPortedSRAM(engine, ncfg.ssram_bytes, sram_ns,
                                    name=f"ssram{node_id}")
        self._alloc_a = _Bump(ncfg.asram_bytes, f"asram{node_id}")
        self._alloc_s = _Bump(ncfg.ssram_bytes, f"ssram{node_id}")

        # translation table occupies the bottom of sSRAM
        table_base = self._alloc_s.take(256 * 8)
        self.ctrl = Ctrl(engine, config, node_id, self.asram, self.ssram,
                         net_port, table_base, stats, tracer=tracer)

        # block units + command processors
        self.ctrl.block_read_unit = BlockReadUnit(self.ctrl)
        self.ctrl.block_tx_unit = BlockTxUnit(self.ctrl)
        self.cmd_processors = [CommandProcessor(self.ctrl, i) for i in range(4)]

        # clsSRAM covering the S-COMA window of DRAM
        line = config.bus.line_bytes
        self.cls = ClsSram(dram_scoma_base, dram_scoma_bytes // line, line)
        install_scoma_default_table(self.cls)
        self.ctrl.cls = self.cls

        # the two BIUs and the service processor
        self.abiu = ABiu(engine, bus, self.ctrl, node_id)
        self.sbiu = SBiu(engine, config, self.ctrl, self.ssram, node_id)
        self.sp = ServiceProcessor(engine, config.sp, config.firmware,
                                   self.sbiu, self.ctrl, stats, node_id,
                                   tracer=tracer)

        self._build_queues()
        self._install_windows(dram_scoma_base, dram_scoma_bytes)
        self._started = False

    # -- queue layout ----------------------------------------------------------

    def _add_queue(self, kind: str, bank: int, logical: Optional[int] = None
                   ) -> QueueState:
        alloc = self._alloc_a if bank == BANK_A else self._alloc_s
        depth = self.config.niu.queue_depth
        base = alloc.take(depth * ENTRY_BYTES)
        if kind == "tx":
            q = self.ctrl.add_tx_queue(bank, base, depth)
        else:
            q = self.ctrl.add_rx_queue(bank, base, depth, logical)
        q.shadow_offset = alloc.take(8, align=8)
        return q

    def _build_queues(self) -> None:
        for _ in range(N_AP_TX):
            self._add_queue("tx", BANK_A)
        self._add_queue("tx", BANK_A)  # express tx
        self._add_queue("tx", BANK_S)  # sP general
        q = self._add_queue("tx", BANK_S)  # sP protocol
        q.priority = 0
        for i in range(N_AP_TX):
            self.ctrl.tx_queues[i].priority = 1
        self.ctrl.tx_queues[EXPRESS_TX_IDX].priority = 1
        self.ctrl.tx_queues[SP_TX_GENERAL].priority = 1

        for logical in range(N_AP_RX):
            q = self._add_queue("rx", BANK_A, logical)
            # user queues backpressure the network rather than spilling
            # into the firmware miss queue; DIVERT/DROP remain per-queue
            # options for the queue-caching experiments
            q.full_policy = FullPolicy.BLOCK
        self._add_queue("rx", BANK_A, EXPRESS_RX_LOGICAL).full_policy = \
            FullPolicy.BLOCK
        for logical in (SP_SERVICE_QUEUE, SP_PROTOCOL_QUEUE, SP_BULK_QUEUE,
                        SP_REL_QUEUE, SP_REL_TX_QUEUE):
            q = self._add_queue("rx", BANK_S, logical)
            q.interrupt_on_arrival = True
        # bulk data must never divert to the miss queue: backpressure the
        # (low-priority) network instead.  Same for the reliable queues:
        # DATA segments backpressure the fabric, and reliable-send
        # requests backpressure the aP's loopback path (the protocol's
        # flow control depends on it).
        for logical in (SP_BULK_QUEUE, SP_REL_QUEUE, SP_REL_TX_QUEUE):
            self.ap_rx_slot(logical).full_policy = FullPolicy.BLOCK
        self._add_queue("rx", BANK_A, NOTIFY_QUEUE).full_policy = \
            FullPolicy.BLOCK

    # -- address windows & default handlers ----------------------------------------

    def _install_windows(self, scoma_base: int, scoma_bytes: int) -> None:
        add, install = self.address_map.add, self.abiu.install
        ncfg = self.config.niu

        ptr_region = add(Region(f"niu{self.node_id}.ptr",
                                NIU_CTL_BASE + PTR_WINDOW_OFF,
                                PTR_WINDOW_SIZE, AccessMode.UNCACHED))
        install(ptr_region, PointerWindowHandler(self.ctrl, ptr_region))

        asram_region = add(Region(f"niu{self.node_id}.asram", ASRAM_BASE,
                                  ncfg.asram_bytes, AccessMode.BURST))
        install(asram_region, SramWindowHandler(self.asram, asram_region))

        extx_region = add(Region(f"niu{self.node_id}.extx",
                                 NIU_CTL_BASE + EXPRESS_TX_OFF,
                                 EXPRESS_WINDOW_BYTES, AccessMode.UNCACHED))
        install(extx_region, ExpressTxHandler(
            self.ctrl, extx_region, self.ctrl.tx_queues[EXPRESS_TX_IDX]))

        exrx_region = add(Region(f"niu{self.node_id}.exrx",
                                 NIU_CTL_BASE + EXPRESS_RX_OFF,
                                 EXPRESS_RX_SIZE, AccessMode.UNCACHED))
        express_rx_slot = self.ctrl.rx_cache.resident()[EXPRESS_RX_LOGICAL]
        install(exrx_region, ExpressRxHandler(
            self.ctrl, exrx_region, self.ctrl.rx_queues[express_rx_slot]))

        regmap: Dict[int, str] = {
            q * 8: f"tx_priority.{q}"
            for q in range(self.config.niu.n_hw_tx_queues)
        }
        sysreg_region = add(Region(f"niu{self.node_id}.sysregs",
                                   NIU_CTL_BASE + SYSREG_OFF,
                                   SYSREG_SIZE, AccessMode.UNCACHED))
        install(sysreg_region, SysregHandler(self.ctrl, sysreg_region, regmap))

        # shared-memory handlers: the 1 GB NUMA window and the S-COMA
        # check over its DRAM window (the DRAM region itself is owned by
        # the memory controller; ScomaHandler only retries/forwards).
        numa_region = add(Region(f"niu{self.node_id}.numa", NUMA_BASE,
                                 NUMA_SIZE, AccessMode.UNCACHED))
        self.numa_handler = NumaHandler(self.ctrl, numa_region)
        install(numa_region, self.numa_handler)

        scoma_region = Region(f"niu{self.node_id}.scoma", scoma_base,
                              scoma_bytes, AccessMode.CACHED)
        self.scoma_handler = ScomaHandler(self.ctrl, self.cls,
                                          self.config.bus.line_bytes)
        install(scoma_region, self.scoma_handler)

    # -- SRAM staging allocators (mechanism/library layer) -----------------------------

    def alloc_asram(self, nbytes: int, align: int = 64) -> int:
        """Reserve aSRAM staging space (returns the bank offset)."""
        return self._alloc_a.take(nbytes, align)

    def alloc_ssram(self, nbytes: int, align: int = 64) -> int:
        """Reserve sSRAM staging space (returns the bank offset)."""
        return self._alloc_s.take(nbytes, align)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn every engine: CTRL, command processors, block units, sP."""
        if self._started:
            return
        self._started = True
        self.ctrl.start()
        for proc in self.cmd_processors:
            proc.start()
        self.ctrl.block_read_unit.start()
        self.ctrl.block_tx_unit.start()
        self.sp.start()

    # -- convenience accessors ---------------------------------------------------------

    def ap_tx(self, i: int) -> QueueState:
        """aP general transmit queue ``i``."""
        return self.ctrl.tx_queues[i]

    def ap_rx_slot(self, logical: int) -> QueueState:
        """Hardware receive queue currently caching ``logical``."""
        slot = self.ctrl.rx_cache.resident().get(logical)
        if slot is None:
            raise ConfigError(f"logical rx queue {logical} is not resident")
        return self.ctrl.rx_queues[slot]
