"""The diff-ing unit: a TxU/RxU FPGA extension (§5 of the paper).

"'Diff-ing' hardware can be added in the TxURxU FPGA for update-based
shared memory protocols that support multiple writers ... StarT-
Voyager's clsSRAM can be used to track modifications at the cache-line
granularity, thus reducing the amount of diff-ing required.  To support
diff-ing in hardware, both the new and old data are supplied to the
TxURxU so that it can perform the diff and send the appropriate
message."

The model: the unit keeps a *twin* (the line contents at the previous
release) per tracked line, compares new data against the twin at
bus-width granularity, and emits the changed runs.  Comparison is
charged one bus cycle per beat — the FPGA datapath the paper sketches.
Modification tracking at line granularity lives in the companion aBIU
handler (:mod:`repro.firmware.update_shm`), which marks lines dirty when
ownership-acquiring bus operations (RWITM/KILL) pass by — no extra
traffic, exactly the clsSRAM trick the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set, Tuple

from repro.common.errors import AddressError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event


class DiffUnit:
    """Twin storage + word-granular compare for one update region."""

    def __init__(self, engine: "Engine", base: int, size: int,
                 line_bytes: int, word_bytes: int = 8,
                 compare_ns_per_beat: float = 15.15) -> None:
        if base % line_bytes or size % line_bytes:
            raise AddressError("update region must be line-aligned")
        self.engine = engine
        self.base = base
        self.size = size
        self.line_bytes = line_bytes
        self.word_bytes = word_bytes
        self.compare_ns_per_beat = compare_ns_per_beat
        self.n_lines = size // line_bytes
        #: twins: line index -> contents at the last release.
        self._twins: Dict[int, bytes] = {}
        #: lines modified since their last release.
        self.dirty: Set[int] = set()
        self.diffs_produced = 0
        self.bytes_saved = 0

    # -- tracking ----------------------------------------------------------

    def covers(self, addr: int) -> bool:
        """True when ``addr`` is inside the tracked region."""
        return self.base <= addr < self.base + self.size

    def line_of(self, addr: int) -> int:
        """Line index of a covered address."""
        if not self.covers(addr):
            raise AddressError(f"{addr:#x} outside the update region")
        return (addr - self.base) // self.line_bytes

    def line_addr(self, line: int) -> int:
        """Base address of line ``line``."""
        if not (0 <= line < self.n_lines):
            raise AddressError(f"update line {line} out of range")
        return self.base + line * self.line_bytes

    def mark_dirty(self, addr: int) -> None:
        """Record a modification (called from the aBIU observation path)."""
        self.dirty.add(self.line_of(addr))

    def take_dirty(self) -> List[int]:
        """Drain the dirty set in address order (release processing)."""
        lines = sorted(self.dirty)
        self.dirty.clear()
        return lines

    # -- the hardware diff ------------------------------------------------------

    def diff(self, line: int, new_data: bytes
             ) -> Generator["Event", None, List[Tuple[int, bytes]]]:
        """Compare ``new_data`` against the line's twin (timed).

        Returns changed runs as ``(byte offset within line, bytes)``,
        merged at word granularity, and updates the twin.  A line with no
        twin (first release) diffs against zeros, so an untouched cold
        region transmits nothing it does not have to.
        """
        if len(new_data) != self.line_bytes:
            raise AddressError(
                f"diff needs a full {self.line_bytes}-byte line"
            )
        beats = self.line_bytes // self.word_bytes
        yield self.engine.timeout(beats * self.compare_ns_per_beat)
        twin = self._twins.get(line, bytes(self.line_bytes))
        runs: List[Tuple[int, bytes]] = []
        run_start = None
        for w in range(beats):
            lo, hi = w * self.word_bytes, (w + 1) * self.word_bytes
            if new_data[lo:hi] != twin[lo:hi]:
                if run_start is None:
                    run_start = lo
            elif run_start is not None:
                runs.append((run_start, new_data[run_start:lo]))
                run_start = None
        if run_start is not None:
            runs.append((run_start, new_data[run_start:]))
        self._twins[line] = bytes(new_data)
        self.diffs_produced += 1
        sent = sum(len(r[1]) for r in runs)
        self.bytes_saved += self.line_bytes - sent
        return runs

    def twin_of(self, line: int) -> bytes:
        """Current twin contents (diagnostics/testing)."""
        return self._twins.get(line, bytes(self.line_bytes))
