"""Destination translation and receive-queue caching.

**Transmit side** — "CTRL implements the destination [translation] by
first applying an AND/OR mask to the virtual destination ... The result
is used as an index into a translation table in one of the SRAMs.  The
table entry specifies the physical route, logical destination queue
number and a few other parameters."

The table lives in sSRAM as real 8-byte entries so firmware can install
mappings with ordinary SRAM writes; CTRL reads entries through the IBus
like any other SRAM traffic (the caller charges that time).

Entry layout (8 bytes, big-endian):

====  ===========================================
byte  meaning
====  ===========================================
0     flags: bit0 VALID
1-2   destination physical node
3     destination logical rx queue
4     network priority (0 high / 1 low)
5-7   reserved
====  ===========================================

**Receive side** — "CTRL translates the logical queue number into a
physical queue number ... performed using a process similar to cache-tag
lookup.  If the queue is not resident (cached) in hardware, then it will
be sent to the miss/overflow queue" for firmware service.  That tag
array is CTRL-internal state, modeled directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import TranslationError
from repro.mem.sram import DualPortedSRAM

TABLE_ENTRY_BYTES = 8
FLAG_VALID = 0x01


@dataclass
class TranslationEntry:
    """Decoded translation-table entry."""

    valid: bool
    dst_node: int
    dst_queue: int
    priority: int


def encode_entry(e: TranslationEntry) -> bytes:
    """Pack an entry into its 8 sSRAM bytes."""
    return bytes(
        [
            FLAG_VALID if e.valid else 0,
            (e.dst_node >> 8) & 0xFF,
            e.dst_node & 0xFF,
            e.dst_queue & 0xFF,
            e.priority & 0xFF,
            0,
            0,
            0,
        ]
    )


def decode_entry(raw: bytes) -> TranslationEntry:
    """Unpack 8 sSRAM bytes into an entry."""
    if len(raw) != TABLE_ENTRY_BYTES:
        raise TranslationError(f"table entry must be 8 bytes, got {len(raw)}")
    return TranslationEntry(
        valid=bool(raw[0] & FLAG_VALID),
        dst_node=(raw[1] << 8) | raw[2],
        dst_queue=raw[3],
        priority=raw[4],
    )


class TranslationTable:
    """The sSRAM-resident vdst translation table."""

    def __init__(self, ssram: DualPortedSRAM, base: int, entries: int = 256) -> None:
        self.ssram = ssram
        self.base = base
        self.entries = entries

    def _offset(self, index: int) -> int:
        if not (0 <= index < self.entries):
            raise TranslationError(f"translation index {index} outside table")
        return self.base + index * TABLE_ENTRY_BYTES

    def install(self, index: int, entry: TranslationEntry) -> None:
        """Untimed install (software setup path; timing charged by caller)."""
        self.ssram.poke(self._offset(index), encode_entry(entry))

    def lookup(self, index: int) -> TranslationEntry:
        """Untimed read of the entry bytes (CTRL charges IBus time itself)."""
        entry = decode_entry(self.ssram.peek(self._offset(index), TABLE_ENTRY_BYTES))
        if not entry.valid:
            raise TranslationError(f"translation entry {index} is invalid")
        return entry

    def invalidate(self, index: int) -> None:
        """Clear one entry."""
        self.ssram.poke(
            self._offset(index),
            encode_entry(TranslationEntry(False, 0, 0, 0)),
        )


class RxQueueCache:
    """Tag array mapping logical rx queue ids to hardware queue slots.

    A large logical namespace is supported, out of which ``n_hw`` queues
    are cached in hardware; the rest miss to firmware.  Fully
    associative, software-managed fills (firmware decides residency, as
    on the real machine).
    """

    def __init__(self, n_hw: int, n_logical: int) -> None:
        if n_logical < n_hw:
            raise TranslationError("logical namespace smaller than hardware set")
        self.n_hw = n_hw
        self.n_logical = n_logical
        self._slot_of: Dict[int, int] = {}
        self._logical_of: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def bind(self, logical: int, slot: int) -> None:
        """Make ``logical`` resident in hardware slot ``slot``."""
        if not (0 <= logical < self.n_logical):
            raise TranslationError(f"logical queue {logical} out of namespace")
        if not (0 <= slot < self.n_hw):
            raise TranslationError(f"hardware slot {slot} out of range")
        old = self._logical_of.pop(slot, None)
        if old is not None:
            self._slot_of.pop(old, None)
        if logical in self._slot_of:
            self._logical_of.pop(self._slot_of[logical], None)
        self._slot_of[logical] = slot
        self._logical_of[slot] = logical

    def unbind(self, logical: int) -> None:
        """Evict a logical queue from hardware."""
        slot = self._slot_of.pop(logical, None)
        if slot is not None:
            self._logical_of.pop(slot, None)

    def lookup(self, logical: int) -> Optional[int]:
        """Hardware slot caching ``logical``, or None (a miss)."""
        slot = self._slot_of.get(logical)
        if slot is None:
            self.misses += 1
        else:
            self.hits += 1
        return slot

    def resident(self) -> Dict[int, int]:
        """Snapshot of logical -> slot bindings."""
        return dict(self._slot_of)
