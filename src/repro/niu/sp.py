"""The service processor (sP): the NIU's embedded firmware engine.

A 604-class processor that "is capable of controlling all aspects of NIU
operation".  The model runs *firmware handlers* — cost-annotated Python
coroutines registered per event kind — under a dispatch kernel that
polls the sBIU event queue, exactly the structure of real NIU firmware.

Occupancy is the first-class output: the sP's :class:`BusyTracker`
accumulates time spent dispatching and executing handlers, which is what
the paper's §6 experiments compare across block-transfer approaches
("firmware engine occupancy is extremely important and can strongly
color experimental results").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional, Tuple

from repro.common.config import FirmwareCostConfig, ProcessorConfig
from repro.common.errors import FirmwareError

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.ctrl import Ctrl
    from repro.niu.sbiu import SBiu
    from repro.sim.engine import Engine
    from repro.sim.events import Event
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer

#: a firmware handler: ``handler(sp, event) -> generator``.
FirmwareHandler = Callable[["ServiceProcessor", Tuple], Generator]


class ServiceProcessor:
    """Firmware dispatch kernel + execution-cost model."""

    def __init__(
        self,
        engine: "Engine",
        proc_config: ProcessorConfig,
        fw_config: FirmwareCostConfig,
        sbiu: "SBiu",
        ctrl: "Ctrl",
        stats: "StatsRegistry",
        node_id: int,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.proc = proc_config
        self.fw = fw_config
        self.sbiu = sbiu
        self.ctrl = ctrl
        self.stats = stats
        self.node_id = node_id
        self.tracer = tracer
        self.name = f"sp{node_id}"
        self.busy = stats.busy_tracker(f"{self.name}.busy")
        self._handlers: Dict[str, FirmwareHandler] = {}
        #: shared state between firmware modules (directories, DMA engine
        #: descriptors, mapping tables...) — firmware "globals".
        self.state: Dict[str, Any] = {}
        self.dispatched = 0
        self.unhandled = 0
        #: set by fault injection when this node dies or the sP wedges:
        #: the kernel stops dispatching (checked between events only — a
        #: handler mid-flight finishes, like a real halt at the next fetch).
        self.halted = False
        self._started = False
        #: protocol sanitizer hook (None = checks disabled, zero cost);
        #: reliable firmware notifies it of tx-window and rx-seq events.
        self.sanitizer = None

    # -- firmware installation -------------------------------------------------

    def register(self, kind: str, handler: FirmwareHandler) -> None:
        """Install (or replace) the handler for one event kind.

        Replacement is legitimate reconfiguration — "with experimentation
        on the machine, it can be reconfigured" — and tests use it to
        inject failures.
        """
        self._handlers[kind] = handler

    def handler_for(self, kind: str) -> FirmwareHandler:
        """Installed handler for ``kind`` (raises when absent)."""
        try:
            return self._handlers[kind]
        except KeyError:
            raise FirmwareError(f"{self.name}: no firmware for event {kind!r}")

    # -- execution-cost primitives (used inside handlers) -------------------------

    def compute(self, n_insns: int) -> "Event":
        """Model ``n_insns`` instructions of straight-line firmware."""
        return self.engine.timeout(self.proc.insn_ns(n_insns))

    # -- the dispatch kernel ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the firmware kernel loop."""
        if self._started:
            return
        self._started = True
        self.engine.process(self._kernel(), name=f"{self.name}.kernel", daemon=True)

    def _kernel(self):
        tr = self.tracer
        while not self.halted:
            event = yield self.sbiu.events.get()  # idle while waiting
            if self.halted:
                return
            self.busy.begin()
            kind = event[0]
            span = (tr.span(f"sp.{kind}", source=self.name,
                            node=self.node_id, track="sP")
                    if tr is not None and tr.active else None)
            try:
                yield self.compute(self.fw.dispatch_insns)
                handler = self._handlers.get(kind)
                if handler is None:
                    self.unhandled += 1
                    self.stats.counter(f"{self.name}.unhandled").incr()
                else:
                    yield from handler(self, event)
                self.dispatched += 1
            finally:
                self.busy.end()
                if span is not None:
                    span.end()

    # -- diagnostics ---------------------------------------------------------------------

    def occupancy(self, window_ns: float = None) -> float:  # type: ignore[assignment]
        """Fraction of (window) time the sP spent in firmware."""
        return self.busy.occupancy(window_ns)
