"""aBIU: the aP-side bus interface unit (FPGA).

"In the common mode of operation each BIU observes every bus operation
... and activates different finite state machines based on the observed
bus operations.  The BIUs can ignore bus operations, handle the bus
operation completely, forward a processed form of the bus operation to
firmware, execute a series of commands to CTRL, or forward the operation
to the other BIU."

The FPGA's reconfigurability is modeled as a *handler registry*: each
NIU-relevant address region maps to a :class:`BusHandler` (a Python class
standing in for an FPGA state machine).  Installing a different handler
over a region **is** "reprogramming the FPGA" — the experiments in §5/§6
of the paper (reflective memory, Approach-5 clsSRAM updates) do exactly
that, and so do ours.

The aBIU is also a bus *master*: CTRL's command processors and block
units issue aP-bus operations through :meth:`issue` ("an interface that
allows CTRL to issue bus operations to the aP memory bus (through
aBIU)").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.bus.ops import BusTransaction
from repro.bus.snoop import Snooper, SnoopResult
from repro.common.errors import SimulationError
from repro.mem.address import Region

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.bus import MemoryBus
    from repro.niu.ctrl import Ctrl
    from repro.sim.engine import Engine
    from repro.sim.events import Event


class BusHandler:
    """One "FPGA state machine": reacts to bus operations on its region."""

    #: diagnostic name.
    handler_name = "handler"

    def decide(self, txn: BusTransaction) -> SnoopResult:
        """Address-tenure verdict (zero simulated time; side effects OK)."""
        raise NotImplementedError

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        """Data tenure for claimed transactions (process fragment)."""
        raise NotImplementedError


class ABiu(Snooper):
    """The aP bus interface unit of one node's NIU."""

    def __init__(
        self,
        engine: "Engine",
        bus: "MemoryBus",
        ctrl: "Ctrl",
        node_id: int,
    ) -> None:
        self.engine = engine
        self.bus = bus
        self.ctrl = ctrl
        self.node_id = node_id
        self.name = f"abiu{node_id}"
        self.snooper_name = self.name
        self._master = f"niu{node_id}"
        self._handlers: List[Tuple[Region, BusHandler]] = []
        self._claimed: Dict[int, BusHandler] = {}
        self.observed = 0
        bus.attach_snooper(self)
        ctrl.abiu_issue = self.issue

    # -- reconfiguration ----------------------------------------------------

    def install(self, region: Region, handler: BusHandler) -> Optional[BusHandler]:
        """Map ``handler`` over ``region``; returns any handler it replaced.

        Replacing a handler at runtime models reprogramming the FPGA with
        new state machines.
        """
        for i, (r, old) in enumerate(self._handlers):
            if r.base == region.base and r.size == region.size:
                self._handlers[i] = (region, handler)
                return old
            if not (region.end <= r.base or r.end <= region.base):
                raise SimulationError(
                    f"{self.name}: region {region.name!r} overlaps {r.name!r}"
                )
        self._handlers.append((region, handler))
        self._handlers.sort(key=lambda pair: pair[0].base)
        return None

    def handler_for(self, addr: int) -> Optional[BusHandler]:
        """The installed handler covering ``addr`` (None when uncovered)."""
        for region, handler in self._handlers:
            if region.contains(addr):
                return handler
        return None

    # -- snooper interface -----------------------------------------------------

    def snoop(self, txn: BusTransaction) -> SnoopResult:
        """Observe one aP bus operation, dispatching to the handler table.

        The aBIU never reacts to operations it mastered itself (the FPGA
        gates its own grants out of the snoop path).
        """
        if txn.master == self._master:
            return SnoopResult.OK
        handler = self.handler_for(txn.addr)
        if handler is None:
            return SnoopResult.OK
        self.observed += 1
        verdict = handler.decide(txn)
        if verdict is SnoopResult.CLAIM:
            self._claimed[txn.txn_id] = handler
        return verdict

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        """Route a claimed data tenure to the claiming handler."""
        handler = self._claimed.pop(txn.txn_id, None)
        if handler is None:
            raise SimulationError(f"{self.name}: serve without claim for {txn!r}")
        return (yield from handler.serve(txn))

    # -- bus mastering ------------------------------------------------------------

    def issue(self, txn: BusTransaction
              ) -> Generator["Event", None, BusTransaction]:
        """Run a CTRL/firmware-originated transaction on the aP bus."""
        txn.master = self._master
        return (yield from self.bus.transact(txn))
