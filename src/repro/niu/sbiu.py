"""sBIU: the sP-side bus interface unit (FPGA).

The service processor reaches everything through the sBIU: the sSRAM
bus-side port, CTRL's immediate state interface, and the two local
command queues.  Events flowing the other way — aBIU-forwarded bus
operations (NUMA/S-COMA), receive-queue arrivals, miss-queue alarms,
protection interrupts — land in one FIFO the firmware kernel drains;
that FIFO is the model of "the aBIU communicates with the sBIU [through]
one last queue" plus CTRL's interrupt lines.

The sP is the only master on its 604 bus, so no full bus model is needed
on that side; each access is charged a fixed bus-operation cost (see
DESIGN.md §2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Tuple

from repro.common.config import MachineConfig
from repro.mem.sram import PORT_BUS, DualPortedSRAM
from repro.niu.commands import Command
from repro.niu.queues import QueueKind
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.ctrl import Ctrl
    from repro.sim.engine import Engine
    from repro.sim.events import Event

#: fixed sP bus-operation overhead, in bus cycles (arbitration-free bus).
SP_BUSOP_CYCLES = 2


class SBiu:
    """The service processor's window into the NIU."""

    def __init__(
        self,
        engine: "Engine",
        config: MachineConfig,
        ctrl: "Ctrl",
        ssram: DualPortedSRAM,
        node_id: int,
    ) -> None:
        self.engine = engine
        self.config = config
        self.ctrl = ctrl
        self.ssram = ssram
        self.node_id = node_id
        self.name = f"sbiu{node_id}"
        #: the event FIFO the firmware kernel drains.
        self.events = Store(engine, capacity=None, name=f"{self.name}.events")
        ctrl.post_sp_event = self.post_event

    # -- inbound events ------------------------------------------------------

    def post_event(self, event: Tuple) -> None:
        """Deliver one event/interrupt to firmware (never blocks the poster)."""
        self.events.try_put(event)

    # -- timing ---------------------------------------------------------------

    def _busop_ns(self) -> float:
        return SP_BUSOP_CYCLES * self.config.bus.cycle_ns

    # -- sSRAM access (bus-side port) --------------------------------------------

    def read_ssram(self, offset: int, size: int
                   ) -> Generator["Event", None, bytes]:
        """Timed sSRAM read on behalf of the sP."""
        yield self.engine.timeout(self._busop_ns())
        return (yield from self.ssram.read(PORT_BUS, offset, size))

    def write_ssram(self, offset: int, data: bytes
                    ) -> Generator["Event", None, None]:
        """Timed sSRAM write on behalf of the sP."""
        yield self.engine.timeout(self._busop_ns())
        yield from self.ssram.write(PORT_BUS, offset, data)

    # -- CTRL immediate interface ----------------------------------------------

    def immediate(self, fn: Callable[[], Any]
                  ) -> Generator["Event", None, Any]:
        """Run one immediate CTRL state access (read/update), timed.

        ``fn`` is a zero-time closure over CTRL state — e.g.
        ``lambda: ctrl.read_pointer(...)`` or a sysreg write.  The paper's
        "immediate command interface allows the sP to read and update CTRL
        state".
        """
        yield self.engine.timeout(self._busop_ns() + self.ctrl.op_ns)
        return fn()

    def read_pointer(self, kind: QueueKind, index: int, which: str
                     ) -> Generator["Event", None, int]:
        """Timed pointer read through the immediate interface."""
        return (yield from self.immediate(
            lambda: self.ctrl.read_pointer(kind, index, which)
        ))

    # -- command queues -----------------------------------------------------------

    def enqueue_command(self, which: int, cmd: Command
                        ) -> Generator["Event", None, None]:
        """Issue one command into a local CTRL command queue (in order)."""
        yield self.engine.timeout(self._busop_ns())
        yield self.ctrl.cmdqs[which].enqueue(cmd)
