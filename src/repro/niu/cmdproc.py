"""Command-queue processors and the block-operation units.

Three :class:`CommandProcessor`\\ s drain CTRL's command queues — two
local (sP/sBIU-fed) and one remote (network-fed).  Every command in a
queue is "issued and completed in order", *except* block operations,
which are handed to the two dedicated block units and complete
asynchronously — exactly the ordering contract §4 of the paper specifies.

The block units are the paper's performance-critical hardware: the
**block-read unit** streams up to one aligned page of aP DRAM into SRAM
by issuing bus operations through the aBIU, and the **block-transmit
unit** carves an SRAM region into command packets that write themselves
into the destination's DRAM through its remote command queue.  Chaining
the two (``CmdBlockTx.after``) gives the fully-hardware DMA of
Block Transfer Approach 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.bus.ops import BusOpType, BusTransaction
from repro.common.errors import FirmwareError, QueueError
from repro.niu.commands import (
    CmdBlockRead,
    CmdBlockTx,
    CmdBusOp,
    CmdCall,
    CmdCopySram,
    CmdForward,
    CmdNotify,
    CmdReadDram,
    CmdSendMessage,
    CmdSetClsState,
    CmdWriteDram,
    CmdWriteDramFromSram,
    Command,
)
from repro.niu.msgformat import MAX_PAYLOAD
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.ctrl import Ctrl
    from repro.sim.events import Event

#: a block-transmit data chunk: 2.5 cache lines, the large TagOn size —
#: with the 8-byte command word it exactly fills one 96-byte packet.
BLOCK_TX_CHUNK = 80


class CommandProcessor:
    """In-order executor for one CTRL command queue."""

    def __init__(self, ctrl: "Ctrl", which: int) -> None:
        self.ctrl = ctrl
        self.which = which
        self.queue = ctrl.cmdqs[which]
        self.executed = 0

    def start(self) -> None:
        """Spawn the drain loop."""
        self.ctrl.engine.process(
            self._loop(), name=f"{self.ctrl.name}.cmdproc{self.which}", daemon=True
        )

    def _loop(self):
        while True:
            cmd = yield self.queue.dequeue()
            yield self.ctrl.engine.timeout(self.ctrl.op_ns)
            yield from self.execute(cmd)
            self.executed += 1

    def execute(self, cmd: Command) -> Generator["Event", None, None]:
        """Dispatch one command (block ops are queued to their unit)."""
        ctrl = self.ctrl
        if isinstance(cmd, CmdWriteDram):
            yield from write_dram(ctrl, cmd.addr, cmd.data)
            if cmd.set_cls_state is not None and ctrl.cls is not None:
                line_bytes = ctrl.config.bus.line_bytes
                first = ctrl.cls.line_of(cmd.addr)
                n = -(-len(cmd.data) // line_bytes)
                for line in range(first, first + n):
                    ctrl.cls.set_state(line, cmd.set_cls_state, fill=True)
                yield ctrl.engine.timeout(n * ctrl.config.bus.cycle_ns)
            if getattr(cmd, "notify_sp", False):
                ctrl.post_sp_event(("dram_write", cmd.addr, len(cmd.data)))
        elif isinstance(cmd, CmdWriteDramFromSram):
            # zero-copy: the view rides to write_dram, which materializes
            # at the IBus crossing (its protection boundary)
            data = yield from ctrl.sram_read_view(cmd.bank, cmd.offset,
                                                  cmd.length)
            yield from write_dram(ctrl, cmd.dram_addr, data)
        elif isinstance(cmd, CmdReadDram):
            data = yield from read_dram(ctrl, cmd.addr, cmd.length)
            yield from ctrl.sram_write(cmd.bank, cmd.offset, data)
        elif isinstance(cmd, CmdCopySram):
            data = yield from ctrl.sram_read(cmd.src_bank, cmd.src_offset, cmd.length)
            yield from ctrl.sram_write(cmd.dst_bank, cmd.dst_offset, data)
        elif isinstance(cmd, CmdSendMessage):
            q = ctrl.tx_queues[cmd.queue]
            yield from ctrl._transmit(q, cmd.header, cmd.payload)
        elif isinstance(cmd, CmdNotify):
            src = getattr(cmd, "_src_node", cmd.src_node)
            yield from ctrl.deliver(cmd.queue, src, cmd.payload)
        elif isinstance(cmd, CmdSetClsState):
            if ctrl.cls is None:
                raise FirmwareError("CmdSetClsState without clsSRAM configured")
            ctrl.cls.set_range(cmd.line, cmd.n_lines, cmd.state)
            yield ctrl.engine.timeout(cmd.n_lines * ctrl.config.bus.cycle_ns)
        elif isinstance(cmd, CmdBusOp):
            txn = BusTransaction(cmd.op, cmd.addr, cmd.size, cmd.data,
                                 master=f"niu{ctrl.node_id}")
            yield from ctrl.abiu_issue(txn)
        elif isinstance(cmd, CmdBlockRead):
            yield ctrl.block_read_unit.submit(cmd)
        elif isinstance(cmd, CmdBlockTx):
            yield ctrl.block_tx_unit.submit(cmd)
        elif isinstance(cmd, CmdForward):
            yield from ctrl.emit_command(cmd.dst_node, cmd.inner, cmd.priority)
        elif isinstance(cmd, CmdCall):
            cmd.fn()
        else:
            raise QueueError(f"unknown command {cmd!r}")


# ----------------------------------------------------------------------
# aBIU-mastered DRAM movement, shared by commands and block units
# ----------------------------------------------------------------------

def write_dram(ctrl: "Ctrl", addr: int, data: bytes
               ) -> Generator["Event", None, None]:
    """Move ``data`` to aP DRAM: IBus crossing, then aBIU bus mastering.

    Line-aligned 32-byte spans go as WRITE_LINE bursts; ragged edges as
    single-beat writes — the same transfer-size decomposition the
    hardware's bus sequencer performs.
    """
    line = ctrl.config.bus.line_bytes
    # Protection boundary: the data leaves SRAM here and crosses the IBus
    # into the aBIU, so a zero-copy view materializes to immutable bytes
    # exactly once (the source SRAM may be recycled while the per-line bus
    # transactions below are still in flight).
    if type(data) is not bytes:
        data = bytes(data)
    # the data crosses the IBus from SRAM/RxU into the aBIU
    yield ctrl.ibus.request()
    try:
        beats = -(-len(data) // ctrl.config.niu.ibus_width_bytes)
        yield ctrl.engine.timeout(ctrl.op_ns + beats * ctrl.config.bus.cycle_ns)
    finally:
        ctrl.ibus.release()
    # slices of the immutable copy ride each bus transaction without
    # further copying (the landing store copies into DRAM/cache frames)
    mv = memoryview(data)
    total = len(data)
    off = 0
    master = f"niu{ctrl.node_id}"
    while off < total:
        a = addr + off
        remaining = total - off
        if a % line == 0 and remaining >= line:
            txn = BusTransaction(BusOpType.WRITE_LINE, a, line,
                                 mv[off : off + line], master=master)
            off += line
        else:
            step = min(8 - (a % 8), remaining)
            txn = BusTransaction(BusOpType.WRITE, a, step,
                                 mv[off : off + step], master=master)
            off += step
        yield from ctrl.abiu_issue(txn)


def read_dram(ctrl: "Ctrl", addr: int, length: int
              ) -> Generator["Event", None, bytes]:
    """Read ``length`` bytes of aP DRAM through aBIU bus mastering."""
    line = ctrl.config.bus.line_bytes
    parts = []
    off = 0
    master = f"niu{ctrl.node_id}"
    while off < length:
        a = addr + off
        remaining = length - off
        if a % line == 0 and remaining >= line:
            txn = BusTransaction(BusOpType.READ_LINE, a, line, master=master)
            step = line
        else:
            step = min(8 - (a % 8), remaining)
            txn = BusTransaction(BusOpType.READ, a, step, master=master)
        yield from ctrl.abiu_issue(txn)
        parts.append(txn.data)
        off += step
    # the data crosses the IBus on its way into SRAM/TxU
    yield ctrl.ibus.request()
    try:
        beats = -(-length // ctrl.config.niu.ibus_width_bytes)
        yield ctrl.engine.timeout(ctrl.op_ns + beats * ctrl.config.bus.cycle_ns)
    finally:
        ctrl.ibus.release()
    # single gather of the per-transaction results (was: bytearray append
    # per transaction plus a final bytes() copy)
    return b"".join(parts)


# ----------------------------------------------------------------------
# block-operation units
# ----------------------------------------------------------------------

class BlockReadUnit:
    """Hardware unit: aP DRAM -> SRAM, up to one aligned page per command."""

    def __init__(self, ctrl: "Ctrl") -> None:
        self.ctrl = ctrl
        self.requests = Store(ctrl.engine, capacity=4,
                              name=f"{ctrl.name}.blkread")
        self.completed = 0

    def submit(self, cmd: CmdBlockRead):
        """Queue a command (event; backpressures when the unit is saturated)."""
        self._check(cmd)
        return self.requests.put(cmd)

    def _check(self, cmd: CmdBlockRead) -> None:
        page = self.ctrl.config.dram.page_bytes
        if cmd.length <= 0 or cmd.length > page:
            raise QueueError(f"block read of {cmd.length} bytes exceeds a page")
        if (cmd.dram_addr // page) != ((cmd.dram_addr + cmd.length - 1) // page):
            raise QueueError("block read crosses a page boundary")

    def start(self) -> None:
        """Spawn the unit's engine."""
        self.ctrl.engine.process(self._loop(), name=f"{self.ctrl.name}.bru",
                                 daemon=True)

    def _loop(self):
        ctrl = self.ctrl
        while True:
            cmd: CmdBlockRead = yield self.requests.get()
            data = yield from read_dram(ctrl, cmd.dram_addr, cmd.length)
            yield from ctrl.sram_write(cmd.bank, cmd.offset, data)
            self.completed += 1
            ctrl.stats.counter(f"{ctrl.name}.block_reads").incr()
            if cmd.done is not None:
                cmd.done.succeed()


class BlockTxUnit:
    """Hardware unit: SRAM -> network as remote DRAM-write command packets."""

    def __init__(self, ctrl: "Ctrl") -> None:
        self.ctrl = ctrl
        self.requests = Store(ctrl.engine, capacity=4, name=f"{ctrl.name}.blktx")
        self.completed = 0

    def submit(self, cmd: CmdBlockTx):
        """Queue a command (event; backpressures when the unit is saturated)."""
        if cmd.length <= 0 or cmd.length > self.ctrl.config.dram.page_bytes:
            raise QueueError(f"block tx of {cmd.length} bytes exceeds a page")
        return self.requests.put(cmd)

    def start(self) -> None:
        """Spawn the unit's engine."""
        self.ctrl.engine.process(self._loop(), name=f"{self.ctrl.name}.btu",
                                 daemon=True)

    def _loop(self):
        ctrl = self.ctrl
        while True:
            cmd: CmdBlockTx = yield self.requests.get()
            if getattr(cmd, "after", None) is not None:
                yield cmd.after
            off = 0
            while off < cmd.length:
                chunk = min(BLOCK_TX_CHUNK, cmd.length - off)
                # zero-copy chunk pickup; CmdWriteDram construction is the
                # protection boundary and materializes the view
                data = yield from ctrl.sram_read_view(cmd.bank,
                                                      cmd.offset + off, chunk)
                wcmd = CmdWriteDram(cmd.dst_addr + off, data,
                                    set_cls_state=cmd.cls_state)
                wcmd.notify_sp = cmd.notify_sp_each  # type: ignore[attr-defined]
                yield from ctrl.emit_command(cmd.dst_node, wcmd)
                off += chunk
            if cmd.notify_queue is not None:
                payload = cmd.notify_payload[:MAX_PAYLOAD]
                yield from ctrl.emit_command(
                    cmd.dst_node,
                    CmdNotify(cmd.notify_queue, payload, src_node=ctrl.node_id),
                )
            self.completed += 1
            ctrl.stats.counter(f"{ctrl.name}.block_txs").incr()
            if cmd.done is not None:
                cmd.done.succeed()
