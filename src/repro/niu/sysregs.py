"""CTRL system registers.

Queue priorities, permissions and "many other configuration registers can
be set through writes to the system registers in CTRL".  The model keeps
a named register file with change hooks, so units (e.g. the transmit
arbiter) react to reconfiguration immediately — the paper's "dynamically
reconfigurable system register that specifies queue priorities".
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ProtectionViolation, QueueError


class SystemRegisters:
    """Named integer registers with write hooks and a trusted/untrusted split."""

    def __init__(self) -> None:
        self._regs: Dict[str, int] = {}
        self._hooks: Dict[str, List[Callable[[str, int], None]]] = {}
        #: registers user (aP, untrusted) code may write.
        self._user_writable: Dict[str, bool] = {}

    def define(self, name: str, value: int = 0, user_writable: bool = False) -> None:
        """Create a register (idempotent redefinition is an error)."""
        if name in self._regs:
            raise QueueError(f"sysreg {name!r} already defined")
        self._regs[name] = value
        self._user_writable[name] = user_writable

    def read(self, name: str) -> int:
        """Current value."""
        if name not in self._regs:
            raise QueueError(f"no sysreg {name!r}")
        return self._regs[name]

    def write(self, name: str, value: int, trusted: bool = True) -> None:
        """Set a register; untrusted writers are confined to user registers."""
        if name not in self._regs:
            raise QueueError(f"no sysreg {name!r}")
        if not trusted and not self._user_writable[name]:
            raise ProtectionViolation(f"untrusted write to sysreg {name!r}")
        self._regs[name] = value
        for hook in self._hooks.get(name, ()):
            hook(name, value)

    def on_write(self, name: str, hook: Callable[[str, int], None]) -> None:
        """Register a change hook (units subscribing to reconfiguration)."""
        if name not in self._regs:
            raise QueueError(f"no sysreg {name!r}")
        self._hooks.setdefault(name, []).append(hook)

    def names(self) -> List[str]:
        """All defined register names."""
        return sorted(self._regs)
