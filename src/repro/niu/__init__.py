"""The StarT-Voyager network interface unit.

Layer 2 (core NIU): :class:`~repro.niu.ctrl.Ctrl`, the command processors
and block units in :mod:`repro.niu.cmdproc`, queue/translation/protection
state.  Layer 1 (programmable NIU): :class:`~repro.niu.abiu.ABiu` with its
handler registry, :class:`~repro.niu.sbiu.SBiu`, and the
:class:`~repro.niu.sp.ServiceProcessor` firmware engine.
"""

from repro.niu.abiu import ABiu, BusHandler
from repro.niu.clssram import (
    CLS_INVALID,
    CLS_PENDING,
    CLS_RO,
    CLS_RW,
    ClsAction,
    ClsSram,
)
from repro.niu.ctrl import Ctrl
from repro.niu.msgformat import (
    ENTRY_BYTES,
    HEADER_BYTES,
    MAX_PAYLOAD,
    MsgHeader,
    decode_header,
    decode_rx_header,
    encode_header,
    encode_rx_header,
)
from repro.niu.niu import (
    EXPRESS_RX_LOGICAL,
    EXPRESS_TX_IDX,
    N_AP_RX,
    N_AP_TX,
    NIU,
    NOTIFY_QUEUE,
    SP_PROTOCOL_QUEUE,
    SP_SERVICE_QUEUE,
    SP_TX_GENERAL,
    SP_TX_PROTOCOL,
    vdst_for,
)
from repro.niu.queues import BANK_A, BANK_S, FullPolicy, QueueKind, QueueState
from repro.niu.sbiu import SBiu
from repro.niu.sp import ServiceProcessor
from repro.niu.translation import RxQueueCache, TranslationEntry, TranslationTable

__all__ = [
    "NIU",
    "Ctrl",
    "ABiu",
    "SBiu",
    "ServiceProcessor",
    "BusHandler",
    "QueueState",
    "QueueKind",
    "FullPolicy",
    "BANK_A",
    "BANK_S",
    "MsgHeader",
    "encode_header",
    "decode_header",
    "encode_rx_header",
    "decode_rx_header",
    "HEADER_BYTES",
    "MAX_PAYLOAD",
    "ENTRY_BYTES",
    "TranslationTable",
    "TranslationEntry",
    "RxQueueCache",
    "ClsSram",
    "ClsAction",
    "CLS_INVALID",
    "CLS_PENDING",
    "CLS_RO",
    "CLS_RW",
    "vdst_for",
    "N_AP_TX",
    "N_AP_RX",
    "EXPRESS_TX_IDX",
    "EXPRESS_RX_LOGICAL",
    "SP_TX_GENERAL",
    "SP_TX_PROTOCOL",
    "SP_SERVICE_QUEUE",
    "SP_PROTOCOL_QUEUE",
    "NOTIFY_QUEUE",
]
