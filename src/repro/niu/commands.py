"""CTRL command queues and the command repertoire.

CTRL manages two *local* command queues — through which sP firmware (via
the sBIU) issues work to CTRL, the aBIU and the network — and one
*remote* command queue fed by COMMAND packets from other nodes.  Each
queue processes its commands strictly in order ("making the queues very
useful for shared-memory protocol processing"), except block operations,
which are handed to the block units and complete asynchronously.

Commands are modeled as small objects rather than packed bytes; the ones
that travel on the wire know their encoded size so packets are charged
the right serialization time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import QueueError

#: identifiers for the command queues: two local (sP/sBIU-fed), plus one
#: remote queue per network priority.  Splitting the remote queue by
#: priority is what keeps protocol replies (HIGH) from head-of-line
#: blocking behind bulk-data writes (LOW) — the queue-level counterpart
#: of the paper's two-priority network requirement.
LOCAL_CMDQ_0 = 0
LOCAL_CMDQ_1 = 1
REMOTE_CMDQ = 2
REMOTE_CMDQ_HIGH = 3


class Command:
    """Base class; subclasses define execution in the command processor."""

    #: wire size when carried in a COMMAND packet (header excluded).
    def wire_bytes(self) -> int:
        return 8


@dataclass
class CmdWriteDram(Command):
    """Write ``data`` into aP DRAM at ``addr`` (via aBIU bus mastering).

    This is the command block transmit puts on the wire so that "the sent
    data [is copied] into the destination's aP DRAM" without firmware.
    ``set_cls_state`` carries the Approach-5 extension: the modified aBIU
    also updates the clsSRAM state for the covered lines after the move.
    """

    addr: int
    data: bytes
    set_cls_state: Optional[int] = None
    #: Approach 4: poke the destination sP after the write lands.
    notify_sp: bool = False

    def __post_init__(self) -> None:
        # Protection boundary: the command may be handed a zero-copy view
        # of SRAM whose slot is recycled while the command is in flight —
        # pin the payload as immutable bytes exactly once, here.
        if type(self.data) is not bytes:
            self.data = bytes(self.data)

    def wire_bytes(self) -> int:
        return 8 + len(self.data)


@dataclass
class CmdReadDram(Command):
    """Read ``length`` bytes of aP DRAM into SRAM ``(bank, offset)``."""

    addr: int
    length: int
    bank: int
    offset: int


@dataclass
class CmdWriteDramFromSram(Command):
    """Move SRAM bytes into aP DRAM without any processor touching them.

    The Approach-2 receive path: firmware reads only the chunk descriptor
    and issues this command against the message's payload bytes sitting
    in the receive-queue SRAM — "neither processor reads the data
    directly".
    """

    bank: int
    offset: int
    dram_addr: int
    length: int


@dataclass
class CmdCopySram(Command):
    """Copy bytes from one SRAM location to another across the IBus."""

    src_bank: int
    src_offset: int
    dst_bank: int
    dst_offset: int
    length: int


@dataclass
class CmdSendMessage(Command):
    """Compose and launch a message from the command stream.

    The header/payload semantics match a normal transmit-queue entry;
    TagOn pickup applies.  ``queue`` names the tx queue whose permissions
    and translation state govern the send (firmware typically owns a
    dedicated tx queue).
    """

    queue: int
    header: Any  # MsgHeader
    payload: bytes = b""


@dataclass
class CmdBlockRead(Command):
    """Block-operation unit: DRAM -> SRAM, up to one aligned page.

    "Block aP bus operations can request that a region of aP DRAM, up to
    one aligned page, be read into aSRAM.  CTRL implements this function
    by issuing a number of bus operations to the aBIU."
    """

    dram_addr: int
    length: int
    bank: int
    offset: int
    #: triggered when the block unit finishes (chaining support).
    done: Any = None


@dataclass
class CmdBlockTx(Command):
    """Block-operation unit: SRAM -> network as remote-write commands.

    "The block transmit command divides a block of data in either SRAM
    bank into packets, adds appropriate headers and bus operations and
    sends them across the network."  ``notify_*`` optionally appends a
    completion message into a receive queue at the destination —
    the am_store-style notification the §6 experiments use.
    ``cls_state``/``notify_sp_each`` carry the Approach-4/5 extensions.
    """

    bank: int
    offset: int
    length: int
    dst_node: int
    dst_addr: int
    notify_queue: Optional[int] = None
    notify_payload: bytes = b""
    #: Approach 5: remote writes also set clsSRAM state for landed lines.
    cls_state: Optional[int] = None
    #: Approach 4: remote command queue pokes the destination sP per chunk.
    notify_sp_each: bool = False
    #: chaining: the unit waits on this event before starting (typically a
    #: CmdBlockRead's ``done`` — the paper's "chained" hardware DMA).
    after: Any = None
    done: Any = None


@dataclass
class CmdNotify(Command):
    """Deliver ``payload`` into local logical rx queue ``queue``.

    Used on the wire as the final packet of a block transfer, and locally
    for firmware-to-application signalling.
    """

    queue: int
    payload: bytes = b""
    src_node: int = 0

    def wire_bytes(self) -> int:
        return 8 + len(self.payload)


@dataclass
class CmdSetClsState(Command):
    """Set clsSRAM state bits for ``n_lines`` lines starting at ``line``."""

    line: int
    n_lines: int
    state: int

    def wire_bytes(self) -> int:
        return 8


@dataclass
class CmdBusOp(Command):
    """Issue an arbitrary bus operation on the aP bus (aBIU mastering).

    The general form of "perform a bus operation on the aP bus"; KILL and
    FLUSH against the L2 ride through here.
    """

    op: Any  # BusOpType
    addr: int
    size: int
    data: Optional[bytes] = None


@dataclass
class CmdForward(Command):
    """Send ``inner`` to another node's remote command queue.

    The firmware path for "reply with data that lands directly in the
    requester's DRAM": S-COMA grants ride this so that "data supplied by
    a remote node for a pending read can be received via the remote
    command queue to avoid firmware execution on the return".
    """

    dst_node: int
    inner: "Command" = None  # type: ignore[assignment]
    priority: int = 0  # PRIORITY_HIGH: protocol replies must overtake data


@dataclass
class CmdCall(Command):
    """Model-level escape hatch: run ``fn()`` in command order.

    Used by tests and reconfiguration experiments to splice custom
    "hardware" actions into the in-order command stream; never on the
    wire.
    """

    fn: Callable[[], None] = lambda: None


class CommandQueue:
    """Bounded in-order command FIFO, drained by a CTRL processor loop."""

    def __init__(self, engine, depth: int, name: str) -> None:
        from repro.sim.store import Store

        self.name = name
        self.store = Store(engine, capacity=depth, name=name)

    def enqueue(self, cmd: Command):
        """Blocking enqueue event (backpressure when the queue is full)."""
        if not isinstance(cmd, Command):
            raise QueueError(f"{self.name}: {cmd!r} is not a Command")
        return self.store.put(cmd)

    def try_enqueue(self, cmd: Command) -> None:
        """Non-blocking enqueue; raises :class:`QueueFullError` when full."""
        if not isinstance(cmd, Command):
            raise QueueError(f"{self.name}: {cmd!r} is not a Command")
        self.store.try_put(cmd)

    def dequeue(self):
        """Event yielding the next command in order."""
        return self.store.get()

    def __len__(self) -> int:
        return len(self.store)
