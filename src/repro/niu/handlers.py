"""Default aBIU state machines (the shipped "FPGA program").

Each class models one of the finite state machines the default StarT-
Voyager aBIU configuration implements: queue-pointer decoding, SRAM
message-buffer windows, Express transmit/receive, system registers, and
the NUMA and S-COMA shared-memory checks.  Replacing any of them through
:meth:`repro.niu.abiu.ABiu.install` is the model's equivalent of
reprogramming the FPGA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import SnoopResult
from repro.common.errors import ProtectionViolation, QueueError, SimulationError
from repro.mem.address import Region
from repro.mem.sram import PORT_BUS, DualPortedSRAM
from repro.niu.abiu import BusHandler
from repro.niu.clssram import ClsSram
from repro.niu.msgformat import (
    FLAG_EXPRESS,
    HEADER_BYTES,
    MsgHeader,
    encode_header,
)
from repro.niu.queues import QueueKind, QueueState
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.ctrl import Ctrl
    from repro.sim.events import Event

# ----------------------------------------------------------------------
# queue pointer window
# ----------------------------------------------------------------------

#: per-queue stride and slot offsets inside the pointer window.
PTR_STRIDE = 32
PTR_TX_PRODUCER = 0
PTR_TX_CONSUMER = 8
PTR_RX_PRODUCER = 16
PTR_RX_CONSUMER = 24


def pointer_offset(kind: QueueKind, index: int, which: str) -> int:
    """Window offset of one pointer register (library-layer helper)."""
    base = index * PTR_STRIDE
    if kind is QueueKind.TX:
        return base + (PTR_TX_PRODUCER if which == "producer" else PTR_TX_CONSUMER)
    return base + (PTR_RX_PRODUCER if which == "producer" else PTR_RX_CONSUMER)


class PointerWindowHandler(BusHandler):
    """Decodes pointer reads/writes: "all information for the pointer
    update is encoded in the *address* of the operation".

    Writes of the transmit producer / receive consumer become CTRL pointer
    updates; reads are served from the SRAM pointer shadows so polling
    never disturbs CTRL.
    """

    handler_name = "ptr-window"

    def __init__(self, ctrl: "Ctrl", region: Region) -> None:
        self.ctrl = ctrl
        self.region = region

    def _decode(self, addr: int) -> Tuple[QueueKind, int, str, bool]:
        off = addr - self.region.base
        index, slot = divmod(off, PTR_STRIDE)
        if slot in (PTR_TX_PRODUCER, PTR_TX_CONSUMER):
            kind = QueueKind.TX
            which = "producer" if slot == PTR_TX_PRODUCER else "consumer"
            writable = slot == PTR_TX_PRODUCER
        elif slot in (PTR_RX_PRODUCER, PTR_RX_CONSUMER):
            kind = QueueKind.RX
            which = "producer" if slot == PTR_RX_PRODUCER else "consumer"
            writable = slot == PTR_RX_CONSUMER
        else:
            raise QueueError(f"pointer window: bad slot offset {slot}")
        return kind, index, which, writable

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op in (BusOpType.READ, BusOpType.WRITE):
            return SnoopResult.CLAIM
        return SnoopResult.OK

    def _owner_ok(self, q, txn: BusTransaction) -> bool:
        """Queue-ownership check: pid 0 (kernel) and unowned queues pass.

        The aP tags its bus operations with the issuing process id; a
        pointer touch by the wrong process is a protection violation —
        the queue shuts down and firmware is interrupted, exactly the
        §4 response ("the queue is shutdown and firmware/OS is notified
        by an interrupt").
        """
        pid = txn.tag if isinstance(txn.tag, int) else 0
        if q.owner_pid == 0 or pid == 0 or pid == q.owner_pid:
            return True
        self.ctrl._violation(
            q, f"pointer access by pid {pid}, queue owned by {q.owner_pid}"
        )
        return False

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        ctrl = self.ctrl
        kind, index, which, writable = self._decode(txn.addr)
        yield ctrl.engine.timeout(ctrl.op_ns)
        if txn.op is BusOpType.WRITE:
            if not writable:
                raise QueueError(
                    f"pointer window: {kind.value}{index}.{which} is read-only"
                )
            q = ctrl.tx_queues[index] if kind is QueueKind.TX \
                else ctrl.rx_queues[index]
            if not self._owner_ok(q, txn):
                return None  # hardware drops the intruding write
            value = int.from_bytes(txn.data[:4], "big")  # type: ignore[index]
            try:
                if kind is QueueKind.TX:
                    ctrl.tx_producer_update(index, value)
                else:
                    ctrl.rx_consumer_update(index, value)
            except ProtectionViolation:
                # hardware drops writes to a shut-down queue; firmware was
                # already interrupted when the queue went down
                pass
            return None
        # reads come from the SRAM shadow like any SRAM access
        q = ctrl.tx_queues[index] if kind is QueueKind.TX else ctrl.rx_queues[index]
        if q.shadow_offset is None:
            value = ctrl.read_pointer(kind, index, which)
        else:
            bank = ctrl._bank(q.bank)
            off = q.shadow_offset + (0 if which == "producer" else 4)
            raw = yield from bank.read(PORT_BUS, off, 4)
            value = int.from_bytes(raw, "big")
        return value.to_bytes(4, "big")[: txn.size] + b"\x00" * max(
            0, txn.size - 4
        )


# ----------------------------------------------------------------------
# SRAM message-buffer window
# ----------------------------------------------------------------------

class SramWindowHandler(BusHandler):
    """Maps an SRAM bank into the aP's address space.

    Serves single-beat and line-burst operations against the bank's
    bus-side port — this is the window through which Basic messages are
    composed and read ("regions of the dual-ported SRAM are mapped into
    the user's address space").
    """

    handler_name = "sram-window"

    def __init__(self, sram: DualPortedSRAM, region: Region) -> None:
        self.sram = sram
        self.region = region

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op in (BusOpType.READ, BusOpType.WRITE,
                      BusOpType.READ_LINE, BusOpType.WRITE_LINE):
            return SnoopResult.CLAIM
        return SnoopResult.OK  # coherence ops mean nothing to SRAM

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        offset = txn.addr - self.region.base
        if txn.op.is_write:
            yield from self.sram.write(PORT_BUS, offset, txn.data)  # type: ignore[arg-type]
            return None
        return (yield from self.sram.read(PORT_BUS, offset, txn.size))


# ----------------------------------------------------------------------
# Express messages
# ----------------------------------------------------------------------

#: express window address encoding: destination and one data byte live in
#: the *address* of the store ("part of the address of a transmit store
#: encodes the logical destination and a byte of data").
EXPRESS_VDST_SHIFT = 11
EXPRESS_BYTE_SHIFT = 3
EXPRESS_WINDOW_BYTES = 256 << EXPRESS_VDST_SHIFT

#: canonical empty message returned when the receive queue is dry.
EXPRESS_EMPTY = bytes(8)
EXPRESS_VALID_FLAG = 0x80


class ExpressTxHandler(BusHandler):
    """One uncached store composes *and* launches an Express message.

    The BIU captures the address bits (vdst + one byte) and four data-bus
    bytes, writes the entry into SRAM via the IBus with a CTRL command,
    and updates the producer pointer — all behind the completed bus
    operation, so the aP sees single-store cost.
    """

    handler_name = "express-tx"

    def __init__(self, ctrl: "Ctrl", region: Region, queue: QueueState) -> None:
        self.ctrl = ctrl
        self.region = region
        self.queue = queue
        #: captured stores waiting for the background composer (bounded —
        #: a full FIFO retries the aP's store, as real capture logic must).
        self.fifo = Store(ctrl.engine, capacity=8, name=f"extx{queue.index}")
        #: captures accepted but whose producer bump has not landed yet;
        #: the admission check must count them or the queue overruns.
        self._uncommitted = 0
        self.retried_full = 0
        ctrl.engine.process(self._composer(), name=f"extx{queue.index}.composer",
                            daemon=True)

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op is not BusOpType.WRITE:
            return SnoopResult.OK
        pid = txn.tag if isinstance(txn.tag, int) else 0
        if self.queue.owner_pid and pid and pid != self.queue.owner_pid:
            # wrong process: same §4 response as the pointer window
            self.ctrl._violation(
                self.queue,
                f"express send by pid {pid}, queue owned by "
                f"{self.queue.owner_pid}",
            )
            return SnoopResult.CLAIM  # complete the store, drop the message
        if not self.queue.enabled:
            return SnoopResult.CLAIM  # shut down: swallow silently
        if self.fifo.is_full or self.queue.space <= self._uncommitted:
            self.retried_full += 1
            return SnoopResult.RETRY
        return SnoopResult.CLAIM

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        yield self.ctrl.engine.timeout(self.ctrl.op_ns)
        if not self.queue.enabled:
            return None  # shut-down queue swallows the store
        off = txn.addr - self.region.base
        vdst = (off >> EXPRESS_VDST_SHIFT) & 0xFF
        extra = (off >> EXPRESS_BYTE_SHIFT) & 0xFF
        # txn.data may be a zero-copy view; materialize for the FIFO item
        data = bytes(txn.data or b"").ljust(4, b"\x00")[:4]
        self._uncommitted += 1
        self.fifo.try_put((vdst, bytes([extra]) + data))
        return None

    def _composer(self):
        ctrl = self.ctrl
        q = self.queue
        while True:
            vdst, payload = yield self.fifo.get()
            hdr = MsgHeader(flags=FLAG_EXPRESS, vdst=vdst, length=len(payload))
            slot = q.slot_offset(q.producer)
            yield from ctrl.sram_write(
                q.bank, slot, encode_header(hdr) + payload
            )
            try:
                ctrl.tx_producer_update(q.index, q.producer + 1)
            except ProtectionViolation:
                pass  # the queue was shut down mid-compose: drop
            self._uncommitted -= 1


class ExpressRxHandler(BusHandler):
    """One uncached load receives an Express message and frees its slot.

    Returns the canonical empty message when nothing has arrived, else a
    valid-flagged byte, the source node, and the five payload bytes.
    """

    handler_name = "express-rx"

    def __init__(self, ctrl: "Ctrl", region: Region, queue: QueueState) -> None:
        self.ctrl = ctrl
        self.region = region
        self.queue = queue
        self.received = 0
        self.empties = 0

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op is BusOpType.READ:
            return SnoopResult.CLAIM
        return SnoopResult.OK

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        ctrl = self.ctrl
        q = self.queue
        yield ctrl.engine.timeout(ctrl.op_ns)
        if q.is_empty:
            self.empties += 1
            return EXPRESS_EMPTY[: txn.size]
        slot = q.slot_offset(q.consumer)
        bank = ctrl._bank(q.bank)
        entry = yield from bank.read(PORT_BUS, slot, HEADER_BYTES + 5)
        src, length = entry[1], entry[3]
        payload = entry[HEADER_BYTES : HEADER_BYTES + min(5, length)].ljust(5, b"\x00")
        ctrl.rx_consumer_update(q.index, q.consumer + 1)
        self.received += 1
        out = bytes([EXPRESS_VALID_FLAG, src]) + payload + b"\x00"
        return out[: txn.size]


# ----------------------------------------------------------------------
# system registers
# ----------------------------------------------------------------------

class SysregHandler(BusHandler):
    """Memory-mapped CTRL system registers (trusted window)."""

    handler_name = "sysregs"

    def __init__(self, ctrl: "Ctrl", region: Region,
                 regmap: Dict[int, str], trusted: bool = True) -> None:
        self.ctrl = ctrl
        self.region = region
        self.regmap = regmap  # window offset -> register name
        self.trusted = trusted

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op in (BusOpType.READ, BusOpType.WRITE):
            return SnoopResult.CLAIM
        return SnoopResult.OK

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        ctrl = self.ctrl
        name = self.regmap.get(txn.addr - self.region.base)
        if name is None:
            raise QueueError(f"sysreg window: unmapped offset {txn.addr:#x}")
        yield ctrl.engine.timeout(ctrl.op_ns)
        if txn.op is BusOpType.WRITE:
            value = int.from_bytes(txn.data[:4], "big")  # type: ignore[index]
            ctrl.sysregs.write(name, value, trusted=self.trusted)
            return None
        value = ctrl.sysregs.read(name)
        return value.to_bytes(4, "big")[: txn.size].ljust(txn.size, b"\x00")


# ----------------------------------------------------------------------
# NUMA
# ----------------------------------------------------------------------

class NumaHandler(BusHandler):
    """The default NUMA state machine.

    Loads: retried "until the sP explicitly stops the retries" — the
    first miss posts the operation into the aBIU→sBIU queue; firmware
    fetches remote data and calls :meth:`supply`; the next retry is
    claimed and served from the capture buffer.  Stores: the data is
    captured and the bus operation completes immediately (posted write);
    the forwarded operation reaches firmware in order through the same
    queue, so a later load of the same address observes the write.
    """

    handler_name = "numa"

    def __init__(self, ctrl: "Ctrl", region: Region) -> None:
        self.ctrl = ctrl
        self.region = region
        self._pending: Dict[int, bool] = {}
        self._ready: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.retries = 0

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op is BusOpType.WRITE:
            return SnoopResult.CLAIM
        if txn.op is BusOpType.READ:
            key = txn.addr
            if key in self._ready:
                return SnoopResult.CLAIM
            self.retries += 1
            if key not in self._pending:
                self._pending[key] = True
                self.ctrl.post_sp_event(("numa_read", txn.addr, txn.size))
            return SnoopResult.RETRY
        raise SimulationError(
            f"NUMA region accessed with {txn.op.value}; map it uncached"
        )

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        yield self.ctrl.engine.timeout(self.ctrl.op_ns)
        if txn.op is BusOpType.WRITE:
            self.writes += 1
            self.ctrl.post_sp_event(("numa_write", txn.addr, bytes(txn.data)))  # type: ignore[arg-type]
            return None
        self.reads += 1
        data = self._ready.pop(txn.addr)
        self._pending.pop(txn.addr, None)
        return data[: txn.size].ljust(txn.size, b"\x00")

    def supply(self, addr: int, data: bytes) -> None:
        """Firmware delivers load data; the next retry completes."""
        self._ready[addr] = data


# ----------------------------------------------------------------------
# S-COMA
# ----------------------------------------------------------------------

class ScomaHandler(BusHandler):
    """The S-COMA cache-line-state check.

    "The clsSRAM bits are read for every aP bus operation and passed to
    the aBIU ... The aBIU determines what action, if any, should be taken"
    via the (bus op × state) table.  The data itself is served by plain
    DRAM — the covered region *is* local DRAM used as an L3 cache — so
    this handler never claims; it only retries and pokes firmware.
    """

    handler_name = "scoma"

    def __init__(self, ctrl: "Ctrl", cls: ClsSram, line_bytes: int) -> None:
        self.ctrl = ctrl
        self.cls = cls
        self.line_bytes = line_bytes

    def decide(self, txn: BusTransaction) -> SnoopResult:
        line_base = txn.addr & ~(self.line_bytes - 1)
        action = self.cls.check(txn.op, line_base)
        if action.pass_to_sp:
            self.ctrl.post_sp_event(("scoma_miss", txn.op, line_base))
        return SnoopResult.RETRY if action.retry else SnoopResult.OK

    def serve(self, txn: BusTransaction):  # pragma: no cover - never claims
        raise SimulationError("ScomaHandler never claims transactions")
        yield  # unreachable; keeps this a generator
