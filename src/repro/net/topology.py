"""Fat-tree topology and source-route computation.

Arctic is a 4x4 packet-routing switch; the MIT network built from it is a
fat tree.  We model the standard folded-butterfly construction: with
switch radix ``r``, down-degree ``d = r/2`` and up-degree ``u = r/2``,
``L = ceil(log_d N)`` switch levels of ``d^(L-1)`` switches each give full
bisection bandwidth.

Identification scheme (base-``d`` digits):

* a leaf is ``L`` digits ``x_{L-1} .. x_0``;
* a level-``i`` switch (``i`` in 1..L) is ``L-1`` digits; its digits at
  positions ``i-1 .. L-2`` equal the *covered subtree's* leaf digits at
  positions ``i .. L-1``; its digits at positions ``0 .. i-2`` select
  which of the ``d^(i-1)`` parallel copies it is (the "fatness").

Edges:

* level-1 switch ``j`` connects down-port ``c`` to leaf
  ``j*d + c``;
* level-``i`` switch ``j`` (``i>1``) connects down-port ``c`` to the
  level-``i-1`` switch whose digits equal ``j`` except digit ``i-2`` is
  ``c``;
* going up, the parent of ``(i, j)`` on up-port ``b`` is the level-``i+1``
  switch whose digits equal ``j`` except digit ``i-1`` is ``b``.

A route from leaf ``s`` to leaf ``t`` ascends to level ``m+1`` (``m`` =
highest differing digit position), choosing up-ports by a deterministic
seeded hash (load spreading), then descends following ``t``'s digits.
Routes are emitted as port lists consumed by the switches (source
routing, exactly as the paper's translation table "specifies the physical
route").
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.common.errors import NetworkError


def _digits(value: int, base: int, count: int) -> List[int]:
    out = []
    for _ in range(count):
        out.append(value % base)
        value //= base
    return out


def _undigits(digits: List[int], base: int) -> int:
    value = 0
    for d in reversed(digits):
        value = value * base + d
    return value


class FatTreeTopology:
    """Folded-butterfly fat tree: switch identities, wiring, and routes."""

    def __init__(self, n_nodes: int, radix: int = 4, seed: int = 0) -> None:
        if n_nodes < 1:
            raise NetworkError("need at least one node")
        if radix < 2 or radix % 2:
            raise NetworkError("switch radix must be an even integer >= 2")
        self.n_nodes = n_nodes
        self.radix = radix
        self.down_degree = radix // 2
        self.seed = seed
        d = self.down_degree
        # levels needed so that d^L >= n_nodes (min one level)
        levels = 1
        capacity = d
        while capacity < n_nodes:
            levels += 1
            capacity *= d
        self.levels = levels
        self.leaf_slots = capacity
        self.switches_per_level = d ** (levels - 1)

    # -- wiring ------------------------------------------------------------

    def switch_ids(self) -> List[Tuple[int, int]]:
        """All ``(level, index)`` switch identities, level-major order."""
        return [
            (lvl, j)
            for lvl in range(1, self.levels + 1)
            for j in range(self.switches_per_level)
        ]

    def down_target(self, level: int, index: int, port: int) -> Tuple[str, int, int]:
        """What down-port ``port`` of switch ``(level, index)`` connects to.

        Returns ``("leaf", leaf, 0)`` or ``("switch", level-1, index')``
        (the third element of a switch target is its index; for a leaf it
        is unused).
        """
        d = self.down_degree
        self._check_switch(level, index)
        if not (0 <= port < d):
            raise NetworkError(f"down port {port} out of range 0..{d-1}")
        if level == 1:
            return ("leaf", index * d + port, 0)
        digs = _digits(index, d, self.levels - 1)
        digs[level - 2] = port
        return ("switch", level - 1, _undigits(digs, d))

    def up_target(self, level: int, index: int, port: int) -> Tuple[int, int]:
        """Parent ``(level+1, index')`` reached through up-port ``port``."""
        d = self.down_degree
        self._check_switch(level, index)
        if level >= self.levels:
            raise NetworkError(f"level-{level} switches have no parents")
        if not (0 <= port < d):
            raise NetworkError(f"up port {port} out of range 0..{d-1}")
        digs = _digits(index, d, self.levels - 1)
        digs[level - 1] = port
        return (level + 1, _undigits(digs, d))

    def leaf_switch(self, leaf: int) -> int:
        """Index of the level-1 switch a leaf attaches to."""
        self._check_leaf(leaf)
        return leaf // self.down_degree

    def _check_switch(self, level: int, index: int) -> None:
        if not (1 <= level <= self.levels):
            raise NetworkError(f"no switch level {level}")
        if not (0 <= index < self.switches_per_level):
            raise NetworkError(f"no switch index {index} at level {level}")

    def _check_leaf(self, leaf: int) -> None:
        if not (0 <= leaf < self.leaf_slots):
            raise NetworkError(f"leaf {leaf} outside 0..{self.leaf_slots - 1}")

    # -- routing -------------------------------------------------------------

    def _up_choice(self, src: int, dst: int, level: int) -> int:
        """Deterministic, seed-dependent spread of up-traffic over copies."""
        h = (src * 0x9E3779B1 ^ dst * 0x85EBCA77 ^ level * 0xC2B2AE3D
             ^ (self.seed + 1) * 0x27220A95) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 0x165667B1) & 0xFFFFFFFF
        h ^= h >> 16
        return h % self.down_degree

    def route(self, src: int, dst: int,
              avoid: Optional[AbstractSet[str]] = None) -> List[int]:
        """Port list from leaf ``src`` to leaf ``dst``.

        Port convention inside a switch: ``0..d-1`` are down ports,
        ``d..2d-1`` are up ports.  The injection hop (node to its level-1
        switch) consumes no digit; the first digit steers the level-1
        switch.

        ``avoid`` names downed links (see :meth:`up_link_name` /
        :meth:`down_link_name` for the naming convention); when given,
        the route searches the fat tree's path diversity — alternative
        up-link copies first, then higher turn levels — for a walk that
        touches none of them (up/down re-routing).  Raises when the
        remaining fabric cannot connect the pair.
        """
        self._check_leaf(src)
        self._check_leaf(dst)
        d = self.down_degree
        if src == dst:
            raise NetworkError("no route from a node to itself")
        sd = _digits(src, d, self.levels)
        td = _digits(dst, d, self.levels)
        # highest differing digit position -> turn at level m+1
        m = max(p for p in range(self.levels) if sd[p] != td[p])
        if not avoid:
            ports: List[int] = []
            for lvl in range(1, m + 1):  # ascend from level lvl to lvl+1
                ports.append(d + self._up_choice(src, dst, lvl))
            for lvl in range(m + 1, 0, -1):  # descend: digit of dst at lvl-1
                ports.append(td[lvl - 1])
            return ports
        if (self.inject_link_name(src) in avoid
                or self.deliver_link_name(dst) in avoid):
            raise NetworkError(
                f"no route {src}->{dst}: an attachment link is down"
            )
        # search turn levels lowest (shortest route) first; every extra
        # level multiplies the number of parallel copies by d
        for turn in range(m + 1, self.levels + 1):
            found = self._search_route(src, dst, td, turn, 1,
                                       self.leaf_switch(src), avoid)
            if found is not None:
                return found
        raise NetworkError(
            f"no route {src}->{dst} avoids the downed links"
        )

    def _search_route(self, src: int, dst: int, td: List[int], turn: int,
                      level: int, index: int,
                      avoid: AbstractSet[str]) -> Optional[List[int]]:
        """DFS over ascent up-link choices with the descent fixed by
        ``dst``'s digits.  Choice order starts at the seeded default hash
        so the fault-free subpaths match normal routing (determinism)."""
        d = self.down_degree
        if level == turn:
            ports: List[int] = []
            lvl, idx = level, index
            while True:
                c = td[lvl - 1]
                if self.down_link_name(lvl, idx, c) in avoid:
                    return None
                ports.append(c)
                target = self.down_target(lvl, idx, c)
                if target[0] == "leaf":
                    return ports if target[1] == dst else None
                _, lvl, idx = target
        base = self._up_choice(src, dst, level)
        for k in range(d):
            b = (base + k) % d
            if self.up_link_name(level, index, b) in avoid:
                continue
            n_level, n_index = self.up_target(level, index, b)
            rest = self._search_route(src, dst, td, turn, n_level, n_index,
                                      avoid)
            if rest is not None:
                return [d + b] + rest
        return None

    # -- link naming (must match ArcticNetwork._build) ---------------------

    def up_link_name(self, level: int, index: int, port: int) -> str:
        """Name of the up-link from switch ``(level, index)`` via ``port``."""
        p_level, p_index = self.up_target(level, index, port)
        return f"sw{level}.{index}->sw{p_level}.{p_index}"

    def down_link_name(self, level: int, index: int, port: int) -> str:
        """Name of the down-link from switch ``(level, index)`` via ``port``."""
        target = self.down_target(level, index, port)
        if target[0] == "leaf":
            return f"sw{level}.{index}->n{target[1]}"
        return f"sw{level}.{index}->sw{target[1]}.{target[2]}"

    def inject_link_name(self, leaf: int) -> str:
        """Name of a node's injection link (node -> level-1 switch)."""
        return f"n{leaf}->sw1.{self.leaf_switch(leaf)}"

    def deliver_link_name(self, leaf: int) -> str:
        """Name of a node's delivery link (level-1 switch -> node)."""
        return f"sw1.{self.leaf_switch(leaf)}->n{leaf}"

    def hop_count(self, src: int, dst: int) -> int:
        """Number of switches a packet traverses."""
        return len(self.route(src, dst))

    def validate_route(self, src: int, dst: int, ports: List[int]) -> bool:
        """Walk ``ports`` through the wiring; True iff it ends at ``dst``.

        Used by the property tests: every emitted route must be accepted
        by the same wiring the switches are built from.
        """
        d = self.down_degree
        level, index = 1, self.leaf_switch(src)
        for i, port in enumerate(ports):
            last = i == len(ports) - 1
            if port >= d:  # ascend
                level, index = self.up_target(level, index, port - d)
            else:  # descend
                target = self.down_target(level, index, port)
                if target[0] == "leaf":
                    return last and target[1] == dst
                _, level, index = target
        return False

    def describe(self) -> Dict[str, int]:
        """Topology summary (diagnostics)."""
        return {
            "nodes": self.n_nodes,
            "leaf_slots": self.leaf_slots,
            "levels": self.levels,
            "switches_per_level": self.switches_per_level,
            "radix": self.radix,
        }
