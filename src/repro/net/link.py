"""Unidirectional Arctic links with credit-based flow control.

A link serializes packets at the configured bandwidth (160 MB/s →
6.25 ns/byte), adds a wire latency, and delivers into a *bounded*
per-priority receive buffer.  The sender must hold a credit for the
target buffer before serializing, so a full buffer backpressures the
upstream switch — head-of-line, per priority lane, exactly the behaviour
that makes two network priorities necessary for deadlock-free protocols.

The transmitter is a priority-arbitrated resource: when packets of both
priorities are waiting for the same link, the high-priority one
serializes first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from repro.common.config import NetworkConfig
from repro.common.errors import NetworkError
from repro.net.packet import Packet
from repro.sim.resource import PriorityResource
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event


class Link:
    """One direction of one physical link.

    ``deliver_early`` enables virtual cut-through on this hop: the packet
    becomes available downstream after only its *header* has serialized
    (the transmitter stays busy for the full packet, preserving
    bandwidth).  Switch-bound hops use it when the network is configured
    cut-through; the final hop into a node always waits for the tail —
    the RxU cannot hand an incomplete packet to CTRL.
    """

    def __init__(self, engine: "Engine", config: NetworkConfig, name: str,
                 deliver_early: bool = False) -> None:
        self.engine = engine
        self.config = config
        self.name = name
        self.deliver_early = deliver_early
        self._tx = PriorityResource(engine, 1, name=f"{name}.tx")
        self._buffers: List[Store] = [
            Store(engine, capacity=config.buffer_packets, name=f"{name}.rx{p}")
            for p in range(config.priorities)
        ]
        self._credits: List[Store] = []
        for p in range(config.priorities):
            credits = Store(engine, capacity=config.buffer_packets, name=f"{name}.cr{p}")
            for _ in range(config.buffer_packets):
                credits.try_put(object())
            self._credits.append(credits)
        # statistics
        self.packets_sent = 0
        self.bytes_sent = 0
        #: fault-injection hook (:class:`repro.faults.inject.LinkFaultState`).
        #: None on a healthy link — the send path pays one attribute check
        #: (the zero-overhead-when-off contract).
        self.faults = None

    # -- sender side ---------------------------------------------------------

    def send(self, pkt: Packet) -> Generator["Event", None, None]:
        """Transmit one packet (process fragment; blocks under backpressure)."""
        if not (0 <= pkt.priority < self.config.priorities):
            raise NetworkError(f"{pkt!r}: priority outside this network's range")
        # credit first: never occupy the wire for a packet that cannot land.
        yield self._credits[pkt.priority].get()
        yield self._tx.request(pkt.priority)
        buffer = self._buffers[pkt.priority]
        # one size lookup per transmission; every charge below uses it
        wire_bytes = pkt.wire_bytes
        serialize_ns = wire_bytes * self.config.ns_per_byte
        # fault injection: a dropped packet still serializes (the wire is
        # occupied before it vanishes) and its receive-buffer credit must
        # come home at delivery time, or the lane would wedge after
        # ``buffer_packets`` losses.  Corruption mutates the packet in
        # place; it delivers normally and rx checksum verification fails.
        fs = self.faults
        dropped = fs is not None and fs.fate(pkt) != 0
        if dropped:
            deliver = lambda: self._credits[pkt.priority].try_put(object())  # noqa: E731
        else:
            deliver = lambda: buffer.try_put(pkt)  # noqa: E731
        try:
            if self.deliver_early:
                # cut-through: the head proceeds after the header; the
                # transmitter stays busy until the tail has left
                header_ns = min(wire_bytes, self.config.header_bytes) \
                    * self.config.ns_per_byte
                yield self.engine.timeout(header_ns)
                self.engine._schedule_call(
                    deliver,
                    delay=self.config.wire_latency_ns,
                )
                yield self.engine.timeout(serialize_ns - header_ns)
            else:
                yield self.engine.timeout(serialize_ns)
                self.engine._schedule_call(
                    deliver,
                    delay=self.config.wire_latency_ns,
                )
        finally:
            self._tx.release()
        self.packets_sent += 1
        self.bytes_sent += wire_bytes

    # -- receiver side ----------------------------------------------------------

    def receive(self, priority: int) -> "Event":
        """Event yielding the next packet of ``priority`` (consumes a slot;
        the freed credit flies back to the sender over the reverse wire,
        so it lands one ``wire_latency_ns`` later).

        The return latency matters for the sharded engine: it makes the
        credit path a nonzero-lookahead channel, so a link cut at a shard
        boundary can carry flow control through the same time-window
        barrier as its packets (see :mod:`repro.shard`).  It is applied
        uniformly — cut or not — so timing is identical at any shard
        count.
        """
        ev = self._buffers[priority].get()
        ev.add_callback(
            lambda _ev: self.engine._schedule_call(
                lambda: self._credits[priority].try_put(object()),
                delay=self.config.wire_latency_ns,
            )
        )
        return ev

    def pending(self, priority: int) -> int:
        """Packets buffered at the receiver for one priority (diagnostics)."""
        return len(self._buffers[priority])

    def utilization(self) -> float:
        """Busy fraction of the transmitter (diagnostics)."""
        return self._tx.utilization()


class CutLinkTx:
    """Sender-shard half of a link cut at a shard boundary.

    Behaves exactly like :class:`Link`'s sender side — credit gate,
    priority-arbitrated transmitter, serialization, fault fates — but at
    the moment a delivery would be scheduled locally it instead *emits* a
    boundary message stamped ``now + wire_latency_ns``; the shard runner
    carries it across and the far shard's :class:`CutLinkRx` lands it in
    the receive buffer at that exact time.  Credits consumed here are
    refilled by :meth:`credit_return`, driven by the runner from the far
    side's credit emissions — the same one-wire-delay round trip an uncut
    link pays, so cutting a link never changes timing.
    """

    is_cut_half = True

    def __init__(self, engine: "Engine", config: NetworkConfig, name: str,
                 emit_pkt, deliver_early: bool = False) -> None:
        self.engine = engine
        self.config = config
        self.name = name
        self.deliver_early = deliver_early
        self._emit_pkt = emit_pkt
        self._tx = PriorityResource(engine, 1, name=f"{name}.tx")
        self._credits: List[Store] = []
        for p in range(config.priorities):
            credits = Store(engine, capacity=config.buffer_packets, name=f"{name}.cr{p}")
            for _ in range(config.buffer_packets):
                credits.try_put(object())
            self._credits.append(credits)
        self.packets_sent = 0
        self.bytes_sent = 0
        self.faults = None

    def send(self, pkt: Packet) -> Generator["Event", None, None]:
        """Transmit one packet toward the far shard (process fragment)."""
        if not (0 <= pkt.priority < self.config.priorities):
            raise NetworkError(f"{pkt!r}: priority outside this network's range")
        yield self._credits[pkt.priority].get()
        yield self._tx.request(pkt.priority)
        wire_bytes = pkt.wire_bytes
        serialize_ns = wire_bytes * self.config.ns_per_byte
        fs = self.faults
        dropped = fs is not None and fs.fate(pkt) != 0
        try:
            if self.deliver_early:
                header_ns = min(wire_bytes, self.config.header_bytes) \
                    * self.config.ns_per_byte
                yield self.engine.timeout(header_ns)
                self._commit(pkt, dropped)
                yield self.engine.timeout(serialize_ns - header_ns)
            else:
                yield self.engine.timeout(serialize_ns)
                self._commit(pkt, dropped)
        finally:
            self._tx.release()
        self.packets_sent += 1
        self.bytes_sent += wire_bytes

    def _commit(self, pkt: Packet, dropped: bool) -> None:
        arrival = self.engine.now + self.config.wire_latency_ns
        if dropped:
            # the packet vanishes on the wire; its credit comes home at
            # what would have been delivery time, exactly as on an uncut
            # link — no boundary traffic for a lost packet.
            priority = pkt.priority
            self.engine._schedule_call(
                lambda: self._credits[priority].try_put(object()),
                delay=self.config.wire_latency_ns,
            )
        else:
            self._emit_pkt(arrival, pkt)

    def credit_return(self, priority: int) -> None:
        """Land one returning credit (runner injection at its stamped time)."""
        self._credits[priority].try_put(object())

    def utilization(self) -> float:
        """Busy fraction of the transmitter (diagnostics)."""
        return self._tx.utilization()


class CutLinkRx:
    """Receiver-shard half of a link cut at a shard boundary.

    Owns the bounded receive buffers.  :meth:`deliver` is driven by the
    shard runner at each packet's stamped arrival time; consuming a
    packet emits a credit boundary message stamped one wire latency out,
    mirroring :meth:`Link.receive`'s delayed credit return.
    """

    is_cut_half = True

    def __init__(self, engine: "Engine", config: NetworkConfig, name: str,
                 emit_credit) -> None:
        self.engine = engine
        self.config = config
        self.name = name
        self._emit_credit = emit_credit
        self._buffers: List[Store] = [
            Store(engine, capacity=config.buffer_packets, name=f"{name}.rx{p}")
            for p in range(config.priorities)
        ]
        # fault plans match by link name; the decision engine only ever
        # runs on the tx side, so a state attached here is inert.
        self.faults = None

    def deliver(self, pkt: Packet) -> None:
        """Land one packet (runner injection at its stamped arrival time)."""
        self._buffers[pkt.priority].try_put(pkt)

    def receive(self, priority: int) -> "Event":
        """Event yielding the next packet of ``priority``."""
        ev = self._buffers[priority].get()
        ev.add_callback(
            lambda _ev: self._emit_credit(
                self.engine.now + self.config.wire_latency_ns, priority)
        )
        return ev

    def pending(self, priority: int) -> int:
        """Packets buffered at the receiver for one priority (diagnostics)."""
        return len(self._buffers[priority])
