"""Switch-resident combining: in-network computing for the Arctic fabric.

The Ultracomputer -> exascale lineage (fetch-and-add combining switches,
then SHARP-style in-switch reduction trees) pushes synchronization work
one level below the NIU: requests that *collide at a switch* are merged
into one packet travelling up a planned tree, and the single reply is
*decombined* on the way back down.  This module is the switch side of
that story; :mod:`repro.sync` plans the trees and provides the
user-level primitives.

Two combining modes share one stage:

* ``MODE_TREE`` — collective combining (barrier / allreduce).  Every
  group member contributes exactly once per sequence number; a switch
  waits for its planned contribution count, folds with the op, and
  forwards one combined packet up.  The root turns around and the
  result fans back down the same tree, one packet per tree edge.
* ``MODE_FETCH`` — opportunistic hot-spot combining (fetch-and-add and
  friends).  The target cell lives at the group's root switch.  A
  request opens a short combining window at each switch on its way up;
  later requests for the same (group, cell, op) that arrive within the
  window are folded in.  The switch keeps a *decombine record* — the
  ordered contributions — and when the single reply returns it hands
  each contributor the value it would have seen had the requests been
  applied serially in combining order (the classic serializable
  fetch-and-add guarantee).

Tagged packets (``Packet.sync``) are consumed by the combining stage
instead of consuming route digits, so they carry no source route.  They
ride the fabric's lossless contract: Arctic links are credit flow
controlled and CRC protected, and the fault injector exempts combining
packets from probabilistic loss (a dropped combined request would
otherwise wedge an entire reduction tree — the same reason SHARP runs
over a reliable transport).

Layering: this module may import only ``common``, ``net`` and ``sim``
(ARCH001); the endpoint protocol bytes it emits toward member NIUs are
therefore defined *here* and mirrored by :mod:`repro.firmware.proto`
(a unit test asserts the two registries agree).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.common.errors import NetworkError
from repro.net.packet import PRIORITY_HIGH, Packet, PacketKind
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.switch import ArcticSwitch
    from repro.sim.engine import Engine
    from repro.sim.stats import StatsRegistry

# combining ops ---------------------------------------------------------------
OP_ADD = 0
OP_MIN = 1
OP_MAX = 2
OP_OR = 3
OP_SWAP = 4  #: unconditional exchange (MCS tail updates); combines.
OP_CSWAP = 5  #: compare-and-swap; forwards uncombined (not associative).

OP_NAMES = {OP_ADD: "add", OP_MIN: "min", OP_MAX: "max", OP_OR: "or",
            OP_SWAP: "swap", OP_CSWAP: "cswap"}

# tag phases / modes ----------------------------------------------------------
PHASE_REQ = 0
PHASE_DOWN = 1
MODE_TREE = 0
MODE_FETCH = 1

#: endpoint reply type bytes, mirrored by ``repro.firmware.proto``
#: (``MSG_SYNC_REP`` / ``MSG_SYNC_TREE_REP``).  Duplicated because the
#: net layer must not import the firmware layer (ARCH001).
SYNC_REP_BYTE = 23
SYNC_TREE_REP_BYTE = 26

#: packed on-the-wire size of one sync tag (realistic link occupancy).
TAG_WIRE_BYTES = 44


def apply_op(op: int, acc: int, value: int) -> int:
    """Fold one contribution into an accumulator (serialization order)."""
    if op == OP_ADD:
        return acc + value
    if op == OP_MIN:
        return acc if acc <= value else value
    if op == OP_MAX:
        return acc if acc >= value else value
    if op == OP_OR:
        return acc | value
    if op == OP_SWAP:
        return value
    raise NetworkError(f"op {op} does not combine")


class SyncTag:
    """The in-network computing header riding one tagged packet."""

    __slots__ = ("phase", "mode", "group", "cell", "seq", "op", "value",
                 "aux", "token", "origin", "reply_queue", "count")

    def __init__(self, phase: int, mode: int, group: int, op: int,
                 value: int = 0, cell: int = 0, seq: int = 0, aux: int = 0,
                 token: int = 0, origin: int = -1, reply_queue: int = 0,
                 count: int = 1) -> None:
        self.phase = phase
        self.mode = mode
        self.group = group
        self.op = op
        self.value = value
        #: fetch mode: which cell of the group; tree mode: unused.
        self.cell = cell
        #: tree mode: the collective sequence number; fetch mode: unused.
        self.seq = seq
        #: second operand (compare value) for ``OP_CSWAP``.
        self.aux = aux
        #: fetch mode: requester cookie on a member request, or the
        #: emitting switch's decombine-record handle on a combined hop.
        self.token = token
        #: contributing member node on a leaf request; -1 once combined.
        self.origin = origin
        #: member's logical rx queue for the final reply.
        self.reply_queue = reply_queue
        #: how many member requests this packet represents (statistics).
        self.count = count

    def pack(self) -> bytes:
        """Wire encoding (size realism; switches read the object fields)."""
        return (bytes([self.phase, self.mode])
                + self.group.to_bytes(4, "big")
                + self.cell.to_bytes(4, "big")
                + self.seq.to_bytes(4, "big")
                + bytes([self.op, self.reply_queue])
                + self.value.to_bytes(8, "big", signed=True)
                + self.aux.to_bytes(8, "big", signed=True)
                + self.token.to_bytes(4, "big")
                + (self.origin & 0xFFFFFFFF).to_bytes(4, "big")
                + self.count.to_bytes(4, "big"))

    def __repr__(self) -> str:  # pragma: no cover
        ph = "REQ" if self.phase == PHASE_REQ else "DOWN"
        md = "tree" if self.mode == MODE_TREE else "fetch"
        return (f"<SyncTag {ph}/{md} g={self.group} cell={self.cell} "
                f"seq={self.seq} op={OP_NAMES.get(self.op, self.op)} "
                f"v={self.value} tok={self.token} origin={self.origin}>")


def unpack_tag(raw: bytes) -> SyncTag:
    """Decode :meth:`SyncTag.pack` (used by the sP leaf-inject handler)."""
    if len(raw) < TAG_WIRE_BYTES - 8:
        raise NetworkError(f"sync tag truncated at {len(raw)} bytes")
    origin = int.from_bytes(raw[36:40], "big")
    if origin == 0xFFFFFFFF:
        origin = -1
    return SyncTag(
        phase=raw[0], mode=raw[1],
        group=int.from_bytes(raw[2:6], "big"),
        cell=int.from_bytes(raw[6:10], "big"),
        seq=int.from_bytes(raw[10:14], "big"),
        op=raw[14], reply_queue=raw[15],
        value=int.from_bytes(raw[16:24], "big", signed=True),
        aux=int.from_bytes(raw[24:32], "big", signed=True),
        token=int.from_bytes(raw[32:36], "big"),
        origin=origin,
        count=int.from_bytes(raw[40:44], "big"),
    )


class GroupProgram:
    """One switch's slice of a planned reduction tree (see
    :mod:`repro.sync.plan`): where contributions come from, where the
    combined packet goes, and where replies fan back out."""

    __slots__ = ("group", "up_port", "down", "is_root")

    def __init__(self, group: int, up_port: Optional[int],
                 down: Tuple[Tuple[int, Optional[int]], ...]) -> None:
        self.group = group
        #: output port toward the tree parent (None at the root).
        self.up_port = up_port
        #: ordered ``(port, member_node_or_None)`` contribution sources;
        #: ``None`` marks a child *switch*, an int a directly attached
        #: member node.  Replies fan out over exactly these ports.
        self.down = down
        self.is_root = up_port is None


class _Slot:
    """An open combining slot: contributions gathered, not yet flushed."""

    __slots__ = ("entries", "acc", "aux", "count", "ports")

    def __init__(self) -> None:
        #: ordered contributions: (port, origin, child_token, req_token,
        #: reply_queue, value) — origin >= 0 marks a member entry.
        self.entries: List[Tuple[int, int, int, int, int, int]] = []
        self.acc = 0
        self.aux = 0
        self.count = 0
        self.ports: List[int] = []


class CombineStage:
    """The combining pipeline stage of one Arctic switch.

    Created lazily by :mod:`repro.sync` only on switches that
    participate in at least one reduction tree — an unprogrammed switch
    pays one ``pkt.sync is None`` test per packet and nothing else.
    """

    __slots__ = ("engine", "config", "switch", "stats", "sanitizer",
                 "programs", "cells", "slots", "records", "pending_down",
                 "_egress", "_token", "hits", "combined_packets")

    def __init__(self, engine: "Engine", switch: "ArcticSwitch",
                 stats: Optional["StatsRegistry"] = None,
                 sanitizer: Any = None) -> None:
        self.engine = engine
        self.config = switch.config
        self.switch = switch
        self.stats = stats
        #: duck-typed decombine-exactly-once checker
        #: (:class:`repro.analysis.sanitize.CombineSanitizer`) or None.
        self.sanitizer = sanitizer
        self.programs: Dict[int, GroupProgram] = {}
        #: fetch-mode cells homed at this switch: (group, cell) -> value.
        self.cells: Dict[Tuple[int, int], int] = {}
        #: open combining slots.  Tree mode keys (MODE_TREE, group, seq);
        #: fetch mode keys (MODE_FETCH, group, cell, op).
        self.slots: Dict[Tuple, _Slot] = {}
        #: flushed fetch slots awaiting their reply: token -> entries.
        self.records: Dict[int, List[Tuple[int, int, int, int, int, int]]] = {}
        #: tree-mode folds forwarded up, awaiting the down sweep:
        #: (group, seq) -> the contribution entries (for member replies).
        self.pending_down: Dict[Tuple[int, int],
                                List[Tuple[int, int, int, int, int, int]]] = {}
        #: switch-originated packets awaiting the transmitters — a
        #: dedicated egress FIFO so a busy output link cannot wedge the
        #: input lane that triggered the emission.
        self._egress = Store(engine, name=f"{switch.name}.combine.egress")
        engine.process(self._drain(), name=f"{switch.name}.combine.egress",
                       daemon=True)
        self._token = 0
        self.hits = 0
        self.combined_packets = 0

    # -- programming -------------------------------------------------------

    def load(self, prog: GroupProgram) -> None:
        """Install (or replace) one group's tree slice on this switch."""
        self.programs[prog.group] = prog

    def outstanding(self) -> int:
        """Open slots + unreturned decombine records (drain check)."""
        return len(self.slots) + len(self.records) + len(self.pending_down)

    # -- the input side (called from the switch's forwarding lanes) --------

    def accept(self, port: int, pkt: Packet):
        """Consume one tagged packet arriving on ``port``."""
        tag: SyncTag = pkt.sync
        yield self.engine.timeout(self.config.combine_latency_ns)
        prog = self.programs.get(tag.group)
        if prog is None:
            raise NetworkError(
                f"{self.switch.name}: sync packet for unprogrammed group "
                f"{tag.group}: {tag!r}"
            )
        if tag.phase == PHASE_DOWN:
            self._down(prog, tag)
        elif tag.mode == MODE_TREE:
            self._tree_req(prog, port, tag)
        else:
            self._fetch_req(prog, port, tag)

    # -- tree mode (barrier / allreduce) -----------------------------------

    def _tree_req(self, prog: GroupProgram, port: int, tag: SyncTag) -> None:
        key = (MODE_TREE, tag.group, tag.seq)
        slot = self.slots.get(key)
        if slot is None:
            slot = self.slots[key] = _Slot()
            slot.acc = tag.value
            if self.sanitizer is not None:
                self.sanitizer.note_open(self.switch.name, key)
        else:
            slot.acc = apply_op(tag.op, slot.acc, tag.value)
            self.hits += 1
            self._count("combine_hits")
        if port in slot.ports:
            raise NetworkError(
                f"{self.switch.name}: duplicate tree contribution on port "
                f"{port} for group {tag.group} seq {tag.seq}"
            )
        slot.ports.append(port)
        slot.count += tag.count
        slot.entries.append((port, tag.origin, tag.token, tag.token,
                             tag.reply_queue, tag.value))
        if len(slot.ports) < len(prog.down):
            return
        # every planned contribution is in: fold complete
        del self.slots[key]
        token = ("tree", tag.group, tag.seq)
        if self.sanitizer is not None:
            self.sanitizer.note_flush(self.switch.name, key, token,
                                      len(prog.down))
        self._count("combine_folds")
        if prog.is_root:
            self._tree_fanout(prog, tag, slot.acc, slot.entries)
        else:
            self.pending_down[(tag.group, tag.seq)] = slot.entries
            up = SyncTag(PHASE_REQ, MODE_TREE, tag.group, tag.op,
                         value=slot.acc, seq=tag.seq, count=slot.count)
            self._emit_switch(prog.up_port, up)

    def _tree_fanout(self, prog: GroupProgram, tag: SyncTag, value: int,
                     entries: List[Tuple[int, int, int, int, int, int]]
                     ) -> None:
        """The down sweep: one packet per tree edge, members get replies."""
        token = ("tree", tag.group, tag.seq)
        by_port = {e[0]: e for e in entries}
        for port, member in prog.down:
            entry = by_port[port]
            if member is None:
                down = SyncTag(PHASE_DOWN, MODE_TREE, tag.group, tag.op,
                               value=value, seq=tag.seq)
                self._emit_switch(port, down)
            else:
                payload = (bytes([SYNC_TREE_REP_BYTE])
                           + tag.group.to_bytes(4, "big")
                           + tag.seq.to_bytes(4, "big")
                           + value.to_bytes(8, "big", signed=True))
                self._emit_member(port, member, entry[4], payload,
                                  SyncTag(PHASE_DOWN, MODE_TREE, tag.group,
                                          tag.op, value=value, seq=tag.seq,
                                          origin=member))
            if self.sanitizer is not None:
                self.sanitizer.note_reply(self.switch.name, token, port)
        if self.sanitizer is not None:
            self.sanitizer.note_close(self.switch.name, token,
                                      len(prog.down))

    # -- fetch mode (combining fetch-and-op) -------------------------------

    def _fetch_req(self, prog: GroupProgram, port: int, tag: SyncTag) -> None:
        if prog.is_root:
            self._fetch_apply_root(prog, port, tag)
            return
        key = (MODE_FETCH, tag.group, tag.cell, tag.op)
        slot = self.slots.get(key)
        entry = (port, tag.origin, tag.token, tag.token, tag.reply_queue,
                 tag.value)
        if slot is None or tag.op == OP_CSWAP:
            slot = _Slot()
            slot.acc = tag.value
            slot.aux = tag.aux
            slot.count = tag.count
            slot.entries.append(entry)
            if tag.op == OP_CSWAP:
                # compare-and-swap is not associative: forward it alone
                self._flush_fetch(prog, key, slot)
                return
            self.slots[key] = slot
            if self.sanitizer is not None:
                self.sanitizer.note_open(self.switch.name, key)
            self.engine.process(self._window(prog, key),
                                name=f"{self.switch.name}.window",
                                daemon=True)
        else:
            slot.acc = apply_op(tag.op, slot.acc, tag.value)
            slot.count += tag.count
            slot.entries.append(entry)
            self.hits += 1
            self._count("combine_hits")

    def _window(self, prog: GroupProgram, key: Tuple):
        """Hold one fetch slot open for the combining window, then flush."""
        yield self.engine.timeout(self.config.combine_window_ns)
        slot = self.slots.pop(key, None)
        if slot is not None:
            self._flush_fetch(prog, key, slot)

    def _flush_fetch(self, prog: GroupProgram, key: Tuple, slot: _Slot
                     ) -> None:
        self._token += 1
        token = self._token
        self.records[token] = slot.entries
        if self.sanitizer is not None:
            self.sanitizer.note_flush(self.switch.name, key, token,
                                      len(slot.entries))
        self._count("combine_folds")
        self.combined_packets += 1
        _mode, group, cell, op = key
        up = SyncTag(PHASE_REQ, MODE_FETCH, group, op, value=slot.acc,
                     cell=cell, aux=slot.aux, token=token, count=slot.count)
        self._emit_switch(prog.up_port, up)

    def _fetch_apply_root(self, prog: GroupProgram, port: int, tag: SyncTag
                          ) -> None:
        """Apply at the cell's home switch and turn the reply around."""
        ckey = (tag.group, tag.cell)
        old = self.cells.get(ckey, 0)
        if tag.op == OP_CSWAP:
            if old == tag.aux:
                self.cells[ckey] = tag.value
        else:
            self.cells[ckey] = apply_op(tag.op, old, tag.value)
        self._count("cell_ops")
        if tag.origin >= 0:
            self._member_fetch_reply(port, tag.origin, tag.reply_queue,
                                     tag.token, old, tag)
        else:
            down = SyncTag(PHASE_DOWN, MODE_FETCH, tag.group, tag.op,
                           value=old, cell=tag.cell, token=tag.token)
            self._emit_switch(port, down)

    def _down(self, prog: GroupProgram, tag: SyncTag) -> None:
        """A reply descending the tree: decombine (fetch) or fan out
        (tree)."""
        if tag.mode == MODE_TREE:
            entries = self.pending_down.pop((tag.group, tag.seq), None)
            if entries is None:
                self._orphan(tag)
                return
            self._tree_fanout(prog, tag, tag.value, entries)
            return
        entries = self.records.pop(tag.token, None)
        if entries is None:
            self._orphan(tag)
            return
        running = tag.value
        for port, origin, child_token, _req, reply_queue, value in entries:
            if origin >= 0:
                self._member_fetch_reply(port, origin, reply_queue,
                                         child_token, running, tag)
            else:
                down = SyncTag(PHASE_DOWN, MODE_FETCH, tag.group, tag.op,
                               value=running, cell=tag.cell,
                               token=child_token)
                self._emit_switch(port, down)
            if self.sanitizer is not None:
                self.sanitizer.note_reply(self.switch.name, tag.token, port)
            running = apply_op(tag.op if tag.op != OP_CSWAP else OP_SWAP,
                               running, value)
        if self.sanitizer is not None:
            self.sanitizer.note_close(self.switch.name, tag.token,
                                      len(entries))
        self._count("decombines")

    def _orphan(self, tag: SyncTag) -> None:
        """A reply nobody is waiting for — exactly the bug the combine
        sanitizer exists to catch; without it, count and drop."""
        if self.sanitizer is not None:
            self.sanitizer.orphan(self.switch.name, tag)
        self._count("orphan_replies")

    def _member_fetch_reply(self, port: int, member: int, reply_queue: int,
                            req_token: int, value: int, tag: SyncTag) -> None:
        payload = (bytes([SYNC_REP_BYTE])
                   + req_token.to_bytes(4, "big")
                   + b"\x01"
                   + value.to_bytes(8, "big", signed=True))
        reply = SyncTag(PHASE_DOWN, MODE_FETCH, tag.group, tag.op,
                        value=value, cell=tag.cell, token=req_token,
                        origin=member)
        self._emit_member(port, member, reply_queue, payload, reply)

    # -- egress ------------------------------------------------------------

    def _emit_switch(self, port: Optional[int], tag: SyncTag) -> None:
        if port is None:
            raise NetworkError(f"{self.switch.name}: no up port for {tag!r}")
        pkt = Packet(PacketKind.DATA, src=0, dst=0, dst_queue=0,
                     payload=tag.pack(), priority=PRIORITY_HIGH,
                     header_bytes=self.config.header_bytes, sync=tag)
        pkt.inject_time = self.engine.now
        self._egress.try_put((port, pkt))

    def _emit_member(self, port: int, member: int, reply_queue: int,
                     payload: bytes, tag: SyncTag) -> None:
        """The last hop: an ordinary DATA delivery into the member's NIU
        (still sync-tagged so it shares the lossless contract)."""
        pkt = Packet(PacketKind.DATA, src=member, dst=member,
                     dst_queue=reply_queue, payload=payload,
                     priority=PRIORITY_HIGH,
                     header_bytes=self.config.header_bytes, sync=tag)
        pkt.inject_time = self.engine.now
        self._egress.try_put((port, pkt))

    def _drain(self):
        while True:
            port, pkt = yield self._egress.get()
            out = self.switch.out_links.get(port)
            if out is None:
                raise NetworkError(
                    f"{self.switch.name}: combining stage routed to "
                    f"unconnected port {port}"
                )
            self.switch.packets_forwarded += 1
            yield from out.send(pkt)

    def _count(self, which: str) -> None:
        if self.stats is not None:
            self.stats.counter(f"{self.switch.name}.{which}").incr()
