"""The Arctic switch model.

A radix-``2d`` packet switch: ``d`` down ports and ``d`` up ports, each
an incoming :class:`~repro.net.link.Link` and an outgoing one.  Packets
are source-routed: each switch consumes one routing digit and forwards on
that output port after the fall-through latency.

One forwarding process runs per (input port, priority) pair — the two
priorities act as independent virtual channels through the switch, so
low-priority congestion cannot block high-priority traffic (the property
the paper demands of the network layer).  Output contention resolves at
the outgoing link's priority-arbitrated transmitter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.common.config import NetworkConfig
from repro.common.errors import NetworkError
from repro.net.link import Link
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.combine import CombineStage
    from repro.sim.engine import Engine
    from repro.sim.stats import StatsRegistry


class ArcticSwitch:
    """One switch: forwarding processes wired between in/out links."""

    def __init__(
        self,
        engine: "Engine",
        config: NetworkConfig,
        level: int,
        index: int,
    ) -> None:
        self.engine = engine
        self.config = config
        self.level = level
        self.index = index
        self.name = f"sw{level}.{index}"
        #: port number -> incoming link (traffic arriving at this switch).
        self.in_links: Dict[int, Link] = {}
        #: port number -> outgoing link (traffic leaving this switch).
        self.out_links: Dict[int, Link] = {}
        self.packets_forwarded = 0
        #: in-network computing stage (:class:`repro.net.combine
        #: .CombineStage`); ``None`` until a reduction tree is planned
        #: through this switch, so unprogrammed switches pay exactly one
        #: attribute test per packet.
        self.combiner: Optional["CombineStage"] = None
        self._started = False

    def attach(self, port: int, in_link: Optional[Link], out_link: Optional[Link]) -> None:
        """Wire one port.  ``None`` leaves a direction unconnected (unused
        leaf slots on a padded fat tree)."""
        if self._started:
            raise NetworkError(f"{self.name}: cannot attach ports after start")
        if in_link is not None:
            self.in_links[port] = in_link
        if out_link is not None:
            self.out_links[port] = out_link

    def start(self) -> None:
        """Spawn the forwarding processes (one per input lane)."""
        if self._started:
            return
        self._started = True
        for port, link in self.in_links.items():
            for priority in range(self.config.priorities):
                self.engine.process(
                    self._forward(port, link, priority),
                    name=f"{self.name}.in{port}.p{priority}",
                    daemon=True,
                )

    def ensure_combiner(self, stats: Optional["StatsRegistry"] = None,
                        sanitizer: Any = None) -> "CombineStage":
        """The switch's combining stage, created on first demand."""
        if self.combiner is None:
            from repro.net.combine import CombineStage
            self.combiner = CombineStage(self.engine, self, stats=stats,
                                         sanitizer=sanitizer)
        return self.combiner

    def _forward(self, port: int, in_link: Link, priority: int):
        while True:
            pkt: Packet = yield in_link.receive(priority)
            yield self.engine.timeout(self.config.switch_latency_ns)
            if pkt.sync is not None:
                # in-network computing: tagged packets terminate in the
                # combining stage instead of consuming a routing digit
                combiner = self.combiner
                if combiner is None:
                    raise NetworkError(
                        f"{self.name}: sync-tagged {pkt!r} reached a switch "
                        "with no combining stage programmed"
                    )
                yield from combiner.accept(port, pkt)
                continue
            out_port = pkt.next_port()
            out = self.out_links.get(out_port)
            if out is None:
                raise NetworkError(
                    f"{self.name}: {pkt!r} routed to unconnected port {out_port}"
                )
            # fault injection: a packet already in the fabric when its next
            # link went down is discarded here — the switch detects the
            # dead link and never occupies its transmitter.  Packets
            # injected *after* the failure get re-routed at the source.
            fs = out.faults
            if fs is not None and fs.down:
                fs.fate(pkt)  # records the down-drop
                continue
            self.packets_forwarded += 1
            yield from out.send(pkt)
