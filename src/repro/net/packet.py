"""Arctic packets.

Arctic moves packets of at most 96 bytes (8-byte header + up to 88 bytes
of payload — which is exactly why the paper's Basic message caps its data
section at 88 bytes).  The header carries the physical route, the logical
destination queue, the network priority, and the length.

Two packet kinds exist, mirroring §4 of the paper:

* ``DATA``     — an ordinary message delivered into a receive queue;
* ``COMMAND``  — a remote command: on arrival it is steered into the
  destination NIU's *remote command queue*, whose processor executes it
  (e.g. "write these bytes into aP DRAM at address X").  This is the
  mechanism block transfers use to land data directly in far memory.

Packets are source-routed: the translation table entry at the sender
"specifies the physical route", so the header carries the port list the
switches consume hop by hop.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, List, Optional
from zlib import crc32

from repro.common.errors import NetworkError

#: priority levels; HIGH wins link arbitration.  The paper requires two
#: priorities so that reply traffic can overtake requests (deadlock
#: avoidance for shared-memory protocols).
PRIORITY_HIGH = 0
PRIORITY_LOW = 1


class PacketKind(enum.Enum):
    """Wire-level packet discriminator (one header bit on the real machine)."""

    DATA = "data"
    COMMAND = "command"


_packet_seq = itertools.count()


class Packet:
    """One network packet: header fields + real payload bytes."""

    __slots__ = (
        "seq",
        "kind",
        "src",
        "dst",
        "dst_queue",
        "priority",
        "payload",
        "route",
        "hop",
        "command",
        "header_bytes",
        "wire_bytes",
        "checksum",
        "inject_time",
        "meta",
        "sync",
    )

    def __init__(
        self,
        kind: PacketKind,
        src: int,
        dst: int,
        dst_queue: int,
        payload: bytes,
        priority: int = PRIORITY_LOW,
        route: Optional[List[int]] = None,
        command: Any = None,
        header_bytes: int = 8,
        sync: Any = None,
    ) -> None:
        if priority not in (PRIORITY_HIGH, PRIORITY_LOW):
            raise NetworkError(f"bad priority {priority}")
        if src < 0 or dst < 0:
            raise NetworkError(f"bad endpoints {src}->{dst}")
        self.seq = next(_packet_seq)
        self.kind = kind
        self.src = src
        self.dst = dst
        self.dst_queue = dst_queue
        self.priority = priority
        # Packet construction is a protection boundary: the payload may
        # arrive as a memoryview aliasing live SRAM (the zero-copy tx
        # path), and the source slot can be recycled while this packet is
        # in flight — materialize to immutable bytes exactly once, here.
        self.payload = payload if type(payload) is bytes else bytes(payload)
        #: switch output ports, consumed one per hop.
        self.route = route or []
        self.hop = 0
        #: for COMMAND packets: the command object executed at the far NIU.
        self.command = command
        self.header_bytes = header_bytes
        #: bytes this packet occupies on a link.  DATA packets carry
        #: ``payload`` verbatim; COMMAND packets carry the command's wire
        #: encoding, so size accounting asks the command itself.  Computed
        #: once — every link hop charges serialization against it.
        #: link-level integrity word (the real Arctic carries a CRC per
        #: packet).  Computed in the same construction pass as the cached
        #: wire size, over the already-materialized payload — no extra
        #: copy on the lossless fast path.  Verified at CTRL rx.
        if command is not None:
            self.wire_bytes = header_bytes + command.wire_bytes()
            self.checksum = 0
        else:
            self.wire_bytes = header_bytes + len(self.payload)
            self.checksum = crc32(self.payload)
        #: stamped by the injecting port; used for latency statistics.
        self.inject_time: float = 0.0
        #: free-form bookkeeping (never consulted by the network itself).
        self.meta: Any = None
        #: in-network computing tag (:class:`repro.net.combine.SyncTag`).
        #: ``None`` for ordinary traffic — switches pay one attribute test
        #: per packet.  Tagged packets are consumed by a switch's combining
        #: stage instead of being source-routed, and they ride the fabric's
        #: lossless guarantee (see :mod:`repro.net.combine`).
        self.sync: Any = sync

    def verify_checksum(self) -> bool:
        """True when the payload still matches the carried checksum."""
        if self.command is not None:
            return self.checksum == 0
        return self.checksum == crc32(self.payload)

    def corrupt(self, ordinal: int = 0) -> None:
        """Flip bits in flight (fault injection): the payload mutates but
        the checksum does not follow, so rx verification fails.  Packets
        with no payload bytes get their checksum word damaged instead."""
        if self.payload:
            buf = bytearray(self.payload)
            buf[ordinal % len(buf)] ^= 0xFF
            self.payload = bytes(buf)
        else:
            self.checksum ^= 0xA5A5A5A5

    def next_port(self) -> int:
        """Consume and return the next routing digit."""
        if self.hop >= len(self.route):
            raise NetworkError(f"{self!r}: route exhausted at hop {self.hop}")
        port = self.route[self.hop]
        self.hop += 1
        return port

    @property
    def at_last_hop(self) -> bool:
        """True when every routing digit has been consumed."""
        return self.hop >= len(self.route)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Pkt#{self.seq} {self.kind.value} {self.src}->{self.dst} "
            f"q={self.dst_queue} pri={self.priority} {len(self.payload)}B>"
        )


def check_packet_size(pkt: Packet, max_packet_bytes: int) -> None:
    """Reject oversized packets at injection (hardware would never emit one)."""
    if pkt.wire_bytes > max_packet_bytes:
        raise NetworkError(
            f"{pkt!r} is {pkt.wire_bytes} bytes on the wire; the network "
            f"maximum is {max_packet_bytes}"
        )
