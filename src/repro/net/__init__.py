"""The MIT Arctic network: packets, fat-tree topology, links, switches.

160 MB/s/direction links, 96-byte packets, two priority levels, credit
flow control, source routing computed by
:class:`~repro.net.topology.FatTreeTopology`, with optional virtual
cut-through forwarding (``NetworkConfig.cut_through``).
"""

from repro.net.link import Link
from repro.net.network import ArcticNetwork, NetworkPort
from repro.net.packet import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    Packet,
    PacketKind,
    check_packet_size,
)
from repro.net.switch import ArcticSwitch
from repro.net.topology import FatTreeTopology

__all__ = [
    "ArcticNetwork",
    "NetworkPort",
    "ArcticSwitch",
    "Link",
    "FatTreeTopology",
    "Packet",
    "PacketKind",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "check_packet_size",
]
