"""The assembled Arctic network: switches, links, endpoints.

:class:`ArcticNetwork` builds the folded-butterfly fat tree described by
:class:`~repro.net.topology.FatTreeTopology`, wires every switch-switch
and node-switch link pair, and exposes one :class:`NetworkPort` per node.
The NIU's TxU/RxU talk to their port; nothing above this layer knows the
topology exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from repro.common.config import NetworkConfig
from repro.common.errors import NetworkError
from repro.net.link import CutLinkRx, CutLinkTx, Link
from repro.net.packet import Packet, check_packet_size
from repro.net.switch import ArcticSwitch
from repro.net.topology import FatTreeTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer


class NetworkPort:
    """One node's attachment point: an injection link and a delivery link."""

    def __init__(
        self,
        engine: "Engine",
        network: "ArcticNetwork",
        node: int,
        to_switch: Link,
        from_switch: Link,
    ) -> None:
        self.engine = engine
        self.network = network
        self.node = node
        self._to_switch = to_switch
        self._from_switch = from_switch
        self.injected = 0
        self.delivered = 0
        # per-node scope for order-sensitive float statistics: keeping one
        # accumulator partial per node makes the merged metrics identical
        # at any shard count (see StatsRegistry.merged_accumulators).
        stats = network.stats
        self._stats = stats.scoped(f"n{node}") if stats is not None else None

    def inject(self, pkt: Packet) -> Generator["Event", None, None]:
        """Send one packet into the network (process fragment).

        The packet must already carry its route (the NIU's destination
        translation supplies it); injection checks the size cap and stamps
        the injection time for latency statistics.
        """
        check_packet_size(pkt, self.network.config.max_packet_bytes)
        if pkt.sync is None:
            # sync-tagged packets are exempt from both checks: they are
            # consumed by a combining stage rather than source-routed, and
            # a member's reply legitimately comes back addressed to itself
            if pkt.dst == self.node:
                raise NetworkError(
                    f"{pkt!r}: self-sends do not enter the network (CTRL "
                    "loops them back locally)"
                )
            if not pkt.route:
                raise NetworkError(
                    f"{pkt!r} has no route; translation must supply one"
                )
        pkt.inject_time = self.engine.now
        self.injected += 1
        tr = self.network.tracer
        if tr is not None and tr.active:
            tr.instant("net.inject", source=f"port{self.node}",
                       node=self.node, track="net", dst=pkt.dst,
                       bytes=len(pkt.payload))
        yield from self._to_switch.send(pkt)

    def receive(self, priority: int) -> "Event":
        """Event delivering the next arrived packet of ``priority``."""
        ev = self._from_switch.receive(priority)

        def _count(_ev) -> None:
            self.delivered += 1
            pkt = _ev.value
            stats = self._stats
            if stats is not None:
                stats.accumulator("net.latency_ns").add(
                    self.engine.now - pkt.inject_time
                )
            tr = self.network.tracer
            if tr is not None and tr.active:
                tr.instant("net.deliver", source=f"port{self.node}",
                           node=self.node, track="net", src=pkt.src)

        ev.add_callback(_count)
        return ev

    def pending(self, priority: int) -> int:
        """Arrived-but-undrained packets of one priority (diagnostics)."""
        return self._from_switch.pending(priority)


class ArcticNetwork:
    """Fat tree of :class:`ArcticSwitch`\\ es with per-node ports."""

    def __init__(
        self,
        engine: "Engine",
        config: NetworkConfig,
        n_nodes: int,
        seed: int = 0,
        stats: Optional["StatsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        shard_view=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.n_nodes = n_nodes
        self.stats = stats
        self.tracer = tracer
        #: sharded builds get a :class:`repro.shard.boundary.ShardView`
        #: (duck-typed here — net sits below shard in the layering): it
        #: answers which nodes/switches are local and collects the
        #: boundary halves of cut links.  ``None`` builds the whole fabric.
        self.shard_view = shard_view
        self.topology = FatTreeTopology(n_nodes, radix=config.radix, seed=seed)
        self.switches: Dict[Tuple[int, int], ArcticSwitch] = {}
        self.links: List[Link] = []
        self._links_by_name: Dict[str, Link] = {}
        #: names of currently-downed links; routing avoids them.  Owned by
        #: :class:`repro.faults.inject.FaultInjector` — empty (and free:
        #: one falsy check per route) on a healthy machine.
        self.down_links: Set[str] = set()
        #: statically known down/up flips, ``(time_ns, name, up)`` sorted
        #: by time — applied lazily as the clock passes them.  A sharded
        #: machine needs every shard's routing to agree on down state
        #: even for links it does not own, without spending per-shard
        #: engine events on the bookkeeping; a flip is visible to any
        #: route computed at or after its timestamp on every shard.
        self._downs_schedule: List[Tuple[float, str, bool]] = []
        self._downs_idx = 0
        self.ports: List[Optional[NetworkPort]] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _new_link(self, name: str, to_switch: bool,
                  src_local: bool = True, dst_local: bool = True):
        """Links toward switches may cut through; node-bound hops always
        deliver complete packets (the RxU needs the tail).

        In a sharded build a link whose endpoints straddle the boundary
        materializes as only its local half: the sender side as a
        :class:`CutLinkTx`, the receiver side as a :class:`CutLinkRx`,
        registered with the shard view so the runner can carry boundary
        messages.  Fully remote links are not built at all (``None``).
        """
        deliver_early = self.config.cut_through and to_switch
        if src_local and dst_local:
            link = Link(self.engine, self.config, name,
                        deliver_early=deliver_early)
        elif src_local:
            link = CutLinkTx(self.engine, self.config, name,
                             emit_pkt=self.shard_view.pkt_emitter(name),
                             deliver_early=deliver_early)
            self.shard_view.register_tx(name, link)
        elif dst_local:
            link = CutLinkRx(self.engine, self.config, name,
                             emit_credit=self.shard_view.credit_emitter(name))
            self.shard_view.register_rx(name, link)
        else:
            return None
        self.links.append(link)
        self._links_by_name[name] = link
        return link

    def _build(self) -> None:
        topo = self.topology
        d = topo.down_degree
        view = self.shard_view
        node_local = (lambda n: True) if view is None else view.owns_node
        switch_local = (lambda lv, ix: True) if view is None \
            else view.owns_switch
        for level, index in topo.switch_ids():
            if switch_local(level, index):
                self.switches[(level, index)] = ArcticSwitch(
                    self.engine, self.config, level, index
                )
        # node <-> level-1 switch links
        for node in range(self.n_nodes):
            leaf = topo.leaf_switch(node)
            n_loc, s_loc = node_local(node), switch_local(1, leaf)
            port = node % d
            up = self._new_link(f"n{node}->sw1.{leaf}", to_switch=True,
                                src_local=n_loc, dst_local=s_loc)
            down = self._new_link(f"sw1.{leaf}->n{node}", to_switch=False,
                                  src_local=s_loc, dst_local=n_loc)
            if s_loc:
                self.switches[(1, leaf)].attach(port, in_link=up, out_link=down)
            if n_loc:
                self.ports.append(
                    NetworkPort(self.engine, self, node,
                                to_switch=up, from_switch=down)
                )
            else:
                self.ports.append(None)
        # switch <-> switch links (child level, child index, up-port b)
        for level in range(1, topo.levels):
            for index in range(topo.switches_per_level):
                c_loc = switch_local(level, index)
                child_digit = (index // (d ** (level - 1))) % d
                for b in range(d):
                    p_level, p_index = topo.up_target(level, index, b)
                    p_loc = switch_local(p_level, p_index)
                    if not (c_loc or p_loc):
                        continue
                    up = self._new_link(
                        f"sw{level}.{index}->sw{p_level}.{p_index}",
                        to_switch=True, src_local=c_loc, dst_local=p_loc)
                    down = self._new_link(
                        f"sw{p_level}.{p_index}->sw{level}.{index}",
                        to_switch=True, src_local=p_loc, dst_local=c_loc)
                    if c_loc:
                        self.switches[(level, index)].attach(
                            d + b, in_link=down, out_link=up)
                    if p_loc:
                        self.switches[(p_level, p_index)].attach(
                            child_digit, in_link=up, out_link=down)
        for sw in self.switches.values():
            sw.start()

    # -- routing helper used by NIU translation tables -------------------------

    def route(self, src: int, dst: int) -> List[int]:
        """Source route (switch port list) between two node leaves.

        Routes computed while links are down steer around them (the
        paper's fat tree has path diversity precisely so single failures
        do not partition the machine)."""
        if not (0 <= dst < self.n_nodes):
            raise NetworkError(f"destination node {dst} does not exist")
        self._apply_downs()
        if self.down_links:
            return self.topology.route(src, dst, avoid=self.down_links)
        return self.topology.route(src, dst)

    def schedule_downs(self, entries: List[Tuple[float, str, bool]]) -> None:
        """Install the statically known link up/down timeline (fault
        arming); entries are ``(time_ns, name, up)``."""
        self._downs_schedule = sorted(entries)
        self._downs_idx = 0

    def _apply_downs(self) -> None:
        sched = self._downs_schedule
        i = self._downs_idx
        if i >= len(sched):
            return
        now = self.engine.now
        while i < len(sched) and sched[i][0] <= now:
            _t, name, up = sched[i]
            if up:
                self.down_links.discard(name)
            else:
                self.down_links.add(name)
            i += 1
        self._downs_idx = i

    def all_link_names(self) -> List[str]:
        """Every link name in the whole fabric, local or not — derived
        from the topology alone, so every shard sees the same universe
        (fault patterns must match identically everywhere)."""
        topo = self.topology
        d = topo.down_degree
        names: List[str] = []
        for node in range(self.n_nodes):
            leaf = topo.leaf_switch(node)
            names.append(f"n{node}->sw1.{leaf}")
            names.append(f"sw1.{leaf}->n{node}")
        for level in range(1, topo.levels):
            for index in range(topo.switches_per_level):
                for b in range(d):
                    p_level, p_index = topo.up_target(level, index, b)
                    names.append(f"sw{level}.{index}->sw{p_level}.{p_index}")
                    names.append(f"sw{p_level}.{p_index}->sw{level}.{index}")
        return names

    def port(self, node: int) -> NetworkPort:
        """The attachment port of ``node``."""
        return self.ports[node]

    def link_named(self, name: str) -> Link:
        """Look up a link by its wiring name (fault injection)."""
        try:
            return self._links_by_name[name]
        except KeyError:
            raise NetworkError(f"no link named {name!r}") from None

    def node_link_names(self, node: int) -> Tuple[str, str]:
        """``(injection, delivery)`` link names of a node's attachment."""
        if not (0 <= node < self.n_nodes):
            raise NetworkError(f"node {node} does not exist")
        return (self.topology.inject_link_name(node),
                self.topology.deliver_link_name(node))

    # -- diagnostics --------------------------------------------------------------

    def total_packets_forwarded(self) -> int:
        """Sum of per-switch forward counts."""
        return sum(sw.packets_forwarded for sw in self.switches.values())

    def max_link_utilization(self) -> float:
        """Highest transmitter utilization across all links (rx halves of
        cut links have no local transmitter and are skipped)."""
        return max((l.utilization() for l in self.links
                    if hasattr(l, "utilization")), default=0.0)
