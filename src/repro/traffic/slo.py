"""SLO accounting: per-request latency into goodput and tail quantiles.

One :class:`SloRecorder` per (client node, application) feeds three
counters and one latency accumulator with names the metrics snapshot
(:mod:`repro.obs.snapshot`) knows how to roll up into the ``traffic``
section:

* ``traffic.<app>.n<node>.offered`` — requests scheduled (open loop) or
  issued (closed loop);
* ``traffic.<app>.n<node>.completed`` — replies received;
* ``traffic.<app>.n<node>.slo_violations`` — completions later than the
  SLO bound;
* ``traffic.<app>.latency_ns`` — the per-request latency distribution
  (an accumulator, so p50/p99/p99.9 ride along for free).

Counters are per-node *names* (they sum exactly across shards) and the
accumulator is per-node *scoped* through ``node.stats``, so the rollup
is byte-identical at any shard count — the same discipline every other
subsystem follows.

Open-loop latency is measured from the request's **scheduled** arrival
time, not its send time: when the client falls behind (tx queue full,
service queue saturated) the wait counts against the SLO.  That is what
makes the offered-load vs goodput knee visible — a closed-loop
measurement would self-throttle and hide it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import NodeBoard

#: default SLO bound for the KV store (40 µs of simulated time).
DEFAULT_SLO_NS = 40_000.0


class SloRecorder:
    """Per-node, per-application request accounting."""

    __slots__ = ("slo_ns", "latency", "offered", "completed", "violations")

    def __init__(self, node: "NodeBoard", app: str,
                 slo_ns: float = DEFAULT_SLO_NS) -> None:
        nid = node.node_id
        self.slo_ns = slo_ns
        self.latency = node.stats.accumulator(f"traffic.{app}.latency_ns")
        self.offered = node.stats.counter(f"traffic.{app}.n{nid}.offered")
        self.completed = node.stats.counter(
            f"traffic.{app}.n{nid}.completed")
        self.violations = node.stats.counter(
            f"traffic.{app}.n{nid}.slo_violations")

    def offer(self, n: int = 1) -> None:
        """Count ``n`` requests entering the system."""
        self.offered.incr(n)

    def complete(self, latency_ns: float) -> None:
        """Record one completed request and check it against the SLO."""
        self.latency.add(latency_ns)
        self.completed.incr()
        if latency_ns > self.slo_ns:
            self.violations.incr()
