"""Server-side sP firmware for the traffic applications.

Three services run as ordinary firmware message handlers on the service
queue, exactly like the platform protocols — the paper's point that the
embedded sP makes the NIU a *programmable* application accelerator:

* **KV store** — each node is home for a shard of the key space;
  get/put/range run against an in-DRAM table (modelled as ``sp.state``)
  with per-op instruction budgets from
  :class:`~repro.common.config.FirmwareCostConfig`.  PUT values arrive
  inline, as TagOn attachments (same handler — see
  :mod:`repro.traffic.wire`), or by DMA reference
  (``MSG_KV_PUTREF``, where the handler pulls the staged bytes through
  :func:`~repro.firmware.base.fw_dram_read`).
* **Parameter server** — accumulates one gradient per worker per
  ``(step, block)``; when the last contribution lands it applies the
  update and fans the new weight back to every contributor, the classic
  incast/outcast hot spot the switch-combining allreduce is measured
  against.
* **Microservice fan-out** — a request at depth ``d`` performs its
  stage's service time, forwards to ``fanout`` children, and replies
  upstream when the last child completes; interior nodes key their
  pending tables by a locally unique context token so overlapping trees
  never cross wires.

``setup_traffic`` installs the handlers on one sP; ``ensure_traffic``
covers a whole machine and — critically for the sharded engine — skips
the ``None`` placeholders a shard keeps for nodes it does not own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.common.errors import FirmwareError
from repro.firmware.base import (
    fw_dram_read,
    fw_send,
    fw_wait,
    register_msg_handler,
)
from repro.niu.niu import (
    SP_SERVICE_QUEUE,
    SP_TX_GENERAL,
    needs_raw_addressing,
    vdst_for,
)
from repro.traffic.wire import (
    KV_GET,
    KV_MISS,
    KV_OK,
    KV_PUT,
    KV_RANGE,
    MSG_KV_PUTREF,
    MSG_KV_REQ,
    MSG_PS_PUSH,
    MSG_USVC_REP,
    MSG_USVC_REQ,
    pack_kv_rep,
    pack_ps_rep,
    pack_usvc_rep,
    pack_usvc_req,
    unpack_kv_putref,
    unpack_kv_req,
    unpack_ps_push,
    unpack_usvc_rep,
    unpack_usvc_req,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: sSRAM staging offset for DMA-referenced PUT values (distinct from the
#: DMA/blockxfer staging areas, which use low offsets).
_KV_STAGING = 0x700

#: a KV reply must fit one Basic message: 6 header bytes + value.
_KV_REPLY_VALUE_CAP = 80

#: doorbell poll period / retry bound for DMA-referenced PUTs.
_PUTREF_POLL_NS = 500.0
_PUTREF_POLL_LIMIT = 256


class TrafficState:
    """Per-node state for every traffic service."""

    __slots__ = ("n_nodes", "wide", "store", "ps_weights", "ps_pending",
                 "usvc_pending", "usvc_next_ctx")

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.wide = needs_raw_addressing(n_nodes)
        #: the node's KV shard: key -> value bytes.
        self.store: Dict[int, bytes] = {}
        #: parameter-server weights: block -> integer weight.
        self.ps_weights: Dict[int, int] = {}
        #: (step, block) -> [grad_sum, [(origin, reply_queue), ...]].
        self.ps_pending: Dict[Tuple[int, int], list] = {}
        #: fan-out bookkeeping: token -> [remaining, origin, reply_q, ctx].
        self.usvc_pending: Dict[int, List[int]] = {}
        self.usvc_next_ctx = 0


def _state(sp: "ServiceProcessor") -> TrafficState:
    st = sp.state.get("traffic")
    if st is None:
        raise FirmwareError(
            f"traffic firmware not installed on node {sp.node_id}")
    return st


def _t_send(sp: "ServiceProcessor", st: TrafficState, node: int, queue: int,
            payload: bytes) -> Generator["Event", None, None]:
    """Wide-safe reply/forward: byte-vdst below 17 nodes, RAW above."""
    if st.wide:
        yield from fw_send(sp, node, payload, queue=SP_TX_GENERAL,
                           raw_queue=queue)
    else:
        yield from fw_send(sp, vdst_for(node, queue), payload,
                           queue=SP_TX_GENERAL)


# ----------------------------------------------------------------------
# KV store
# ----------------------------------------------------------------------


def _on_kv_req(sp: "ServiceProcessor", src: int, payload: bytes
               ) -> Generator["Event", None, None]:
    st = _state(sp)
    op, reply_q, origin, req_id, key, count, value = unpack_kv_req(payload)
    if op == KV_PUT:
        yield sp.compute(sp.fw.kv_op_insns)
        st.store[key] = bytes(value)
        rep = pack_kv_rep(KV_OK, req_id)
    elif op == KV_GET:
        yield sp.compute(sp.fw.kv_op_insns)
        found = st.store.get(key)
        rep = pack_kv_rep(KV_OK if found is not None else KV_MISS, req_id,
                          found or b"")
    elif op == KV_RANGE:
        yield sp.compute(sp.fw.kv_op_insns
                         + count * sp.fw.kv_range_per_key_insns)
        joined = b"".join(st.store.get(k, b"")
                          for k in range(key, key + count))
        rep = pack_kv_rep(KV_OK, req_id, joined[:_KV_REPLY_VALUE_CAP])
    else:
        raise FirmwareError(f"unknown KV op {op}")
    sp.stats.counter(f"traffic.kv.s{sp.node_id}.served").incr()
    yield from _t_send(sp, st, origin, reply_q, rep)


def _on_kv_putref(sp: "ServiceProcessor", src: int, payload: bytes
                  ) -> Generator["Event", None, None]:
    """PUT by DMA reference: RDMA-write plus doorbell polling.

    The control message (this request) races the block-transfer data on
    the network, so the staged region carries a trailing 4-byte doorbell
    token (the request id, written *last* by the sequential block
    pieces).  The handler polls the region until the doorbell matches —
    the standard RDMA completion idiom, here in sP firmware.
    """
    st = _state(sp)
    reply_q, origin, req_id, key, addr, length = unpack_kv_putref(payload)
    yield sp.compute(sp.fw.kv_op_insns)
    for attempt in range(_PUTREF_POLL_LIMIT):
        data = yield from fw_dram_read(sp, addr, length + 4, _KV_STAGING)
        if int.from_bytes(data[length:], "big") == req_id:
            break
        yield from fw_wait(sp, sp.engine.timeout(_PUTREF_POLL_NS))
    else:
        raise FirmwareError(
            f"node {sp.node_id}: DMA PUT doorbell for req {req_id} "
            f"never rang (addr {addr:#x})")
    st.store[key] = data[:length]
    sp.stats.counter(f"traffic.kv.s{sp.node_id}.served").incr()
    yield from _t_send(sp, st, origin, reply_q, pack_kv_rep(KV_OK, req_id))


# ----------------------------------------------------------------------
# parameter server
# ----------------------------------------------------------------------


def _on_ps_push(sp: "ServiceProcessor", src: int, payload: bytes
                ) -> Generator["Event", None, None]:
    st = _state(sp)
    reply_q, origin, step, block, n_workers, grad = unpack_ps_push(payload)
    yield sp.compute(sp.fw.ps_push_insns)
    entry = st.ps_pending.get((step, block))
    if entry is None:
        entry = st.ps_pending[(step, block)] = [0, []]
    entry[0] += grad
    entry[1].append((origin, reply_q))
    if len(entry[1]) < n_workers:
        return
    # last contribution: apply the summed gradient, broadcast the weight
    yield sp.compute(sp.fw.ps_apply_insns)
    del st.ps_pending[(step, block)]
    weight = st.ps_weights.get(block, 0) + entry[0]
    st.ps_weights[block] = weight
    sp.stats.counter(f"traffic.ps.s{sp.node_id}.steps").incr()
    rep = pack_ps_rep(step, block, weight)
    # canonical fan-out order: lockstep workers produce same-timestamp
    # arrival ties whose queue order may differ across shard counts, so
    # replying in arrival order would break shard determinism
    for worker, queue in sorted(entry[1]):
        yield from _t_send(sp, st, worker, queue, rep)


# ----------------------------------------------------------------------
# microservice fan-out
# ----------------------------------------------------------------------


def _usvc_children(me: int, fanout: int, n_nodes: int) -> List[int]:
    return [(me * fanout + j + 1) % n_nodes for j in range(fanout)]


def _on_usvc_req(sp: "ServiceProcessor", src: int, payload: bytes
                 ) -> Generator["Event", None, None]:
    st = _state(sp)
    depth, fanout, reply_q, origin, ctx, svc_insns = unpack_usvc_req(payload)
    yield sp.compute(sp.fw.usvc_dispatch_insns + svc_insns)
    sp.stats.counter(f"traffic.usvc.s{sp.node_id}.stages").incr()
    if depth == 0 or fanout == 0:
        yield from _t_send(sp, st, origin, reply_q, pack_usvc_rep(ctx))
        return
    children = _usvc_children(sp.node_id, fanout, st.n_nodes)
    token = st.usvc_next_ctx
    st.usvc_next_ctx = (token + 1) & 0xFFFFFFFF
    st.usvc_pending[token] = [len(children), origin, reply_q, ctx]
    fwd = pack_usvc_req(depth - 1, fanout, SP_SERVICE_QUEUE, sp.node_id,
                        token, svc_insns)
    for child in children:
        yield from _t_send(sp, st, child, SP_SERVICE_QUEUE, fwd)


def _on_usvc_rep(sp: "ServiceProcessor", src: int, payload: bytes
                 ) -> Generator["Event", None, None]:
    st = _state(sp)
    token = unpack_usvc_rep(payload)
    entry = st.usvc_pending.get(token)
    if entry is None:
        raise FirmwareError(
            f"node {sp.node_id}: stray microservice reply (token {token})")
    yield sp.compute(sp.fw.usvc_dispatch_insns)
    entry[0] -= 1
    if entry[0] > 0:
        return
    del st.usvc_pending[token]
    yield from _t_send(sp, st, entry[1], entry[2], pack_usvc_rep(entry[3]))


# ----------------------------------------------------------------------
# installation
# ----------------------------------------------------------------------


def setup_traffic(sp: "ServiceProcessor", n_nodes: int) -> None:
    """Install every traffic service handler on one node's sP."""
    if "traffic" in sp.state:
        return
    sp.state["traffic"] = TrafficState(n_nodes)
    register_msg_handler(sp, MSG_KV_REQ, _on_kv_req)
    register_msg_handler(sp, MSG_KV_PUTREF, _on_kv_putref)
    register_msg_handler(sp, MSG_PS_PUSH, _on_ps_push)
    register_msg_handler(sp, MSG_USVC_REQ, _on_usvc_req)
    register_msg_handler(sp, MSG_USVC_REP, _on_usvc_rep)


def ensure_traffic(machine: "StarTVoyager") -> None:
    """Install the traffic firmware machine-wide (idempotent).

    A sharded sub-machine keeps ``None`` for nodes it does not own —
    skip them; each shard installs on exactly the nodes it simulates.
    """
    for node in machine.nodes:
        if node is None:
            continue
        if "traffic" not in node.sp.state:
            setup_traffic(node.sp, machine.config.n_nodes)
