"""Microservice fan-out: request trees with per-stage service times.

A request enters at a front-end service (chosen by the trace key),
performs its stage's service time on that node's sP, fans out to
``fanout`` children, and completes when the whole depth-``d`` tree has
replied — the RPC shape of a modern microservice graph, where the
end-to-end tail is governed by the *slowest leaf* (tail-at-scale).
Server-side mechanics live in :mod:`repro.traffic.firmware`; this
module is the client: an open-loop sender/receiver pair exactly like
the KV client's, sharing the traffic queue claim (tx 1 / rx 1).

The SLO section reports the app as ``usvc``: one request offered per
tree, completed when the root replies, latency measured from the
scheduled arrival.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Sequence

from repro.mp.basic import BasicPort
from repro.niu.niu import SP_SERVICE_QUEUE, needs_raw_addressing, vdst_for
from repro.traffic.firmware import ensure_traffic
from repro.traffic.kv import RX_LOGICAL, TX_INDEX
from repro.traffic.load import TraceRecord
from repro.traffic.slo import SloRecorder
from repro.traffic.wire import pack_usvc_req, unpack_usvc_rep

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard

#: default end-to-end SLO for a fan-out tree (100 µs of simulated time).
DEFAULT_TREE_SLO_NS = 100_000.0


class UsvcClient:
    """One node's microservice client: issues fan-out trees."""

    def __init__(self, machine: "StarTVoyager", node: "NodeBoard", *,
                 depth: int = 2, fanout: int = 2, svc_insns: int = 200,
                 slo_ns: float = DEFAULT_TREE_SLO_NS,
                 reliable: bool = False) -> None:
        ensure_traffic(machine)
        self.machine = machine
        self.node = node
        self.me = node.node_id
        self.n_nodes = machine.config.n_nodes
        self.wide = needs_raw_addressing(self.n_nodes)
        self.depth = depth
        self.fanout = fanout
        self.svc_insns = svc_insns
        self.reliable = reliable
        self.port = BasicPort(node, TX_INDEX, RX_LOGICAL)
        self.slo = SloRecorder(node, "usvc", slo_ns)
        self.inflight: Dict[int, float] = {}
        self._next_req = 0

    def _issue(self, api: "ApApi", rec: TraceRecord, sched_ns: float
               ) -> Generator:
        req_id = self._next_req
        self._next_req += 1
        self.inflight[req_id] = sched_ns
        self.slo.offer()
        entry = rec.key % self.n_nodes
        payload = pack_usvc_req(self.depth, self.fanout, RX_LOGICAL,
                                self.me, req_id, self.svc_insns)
        if self.reliable:
            yield from self.port.send_reliable(api, entry, payload,
                                               dst_queue=SP_SERVICE_QUEUE,
                                               raw=self.wide)
        elif self.wide:
            yield from self.port.send(api, entry, payload, raw=True,
                                      dst_queue=SP_SERVICE_QUEUE)
        else:
            yield from self.port.send(api, vdst_for(entry, SP_SERVICE_QUEUE),
                                      payload)

    def open_loop(self, records: Sequence[TraceRecord]
                  ) -> List[Callable[["ApApi"], Generator]]:
        """Open-loop sender+receiver pair for this node's tree trace."""
        total = len(records)

        def sender(api: "ApApi"):
            for rec in records:
                if rec.time_ns > api.now:
                    yield from api.sleep(rec.time_ns - api.now)
                yield from self._issue(api, rec, rec.time_ns)

        def receiver(api: "ApApi"):
            for _ in range(total):
                _src, payload = yield from self.port.recv(api)
                ctx = unpack_usvc_rep(payload)
                sched = self.inflight.pop(ctx)
                self.slo.complete(api.now - sched)

        return [sender, receiver]
