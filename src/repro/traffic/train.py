"""Training traffic: parameter-server push/pull vs allreduce steps.

Two ways to run the same synchronous-SGD step shape, so the platform's
collective mechanisms can be compared under an application's traffic
pattern rather than a microbenchmark's:

* ``mode="ps"`` — each parameter block lives on a server sP
  (round-robin over the nodes); every worker pushes one gradient per
  block per step and waits for the updated weights.  The last push
  triggers the apply and an outcast broadcast to all contributors —
  the classic central-server hot spot.
* ``mode="allreduce"`` — the gradient sum runs through
  :class:`~repro.lib.mpi.MiniMPI` with ``algo`` choosing the machinery:
  ``"flat"``/``"tree"`` (pure point-to-point, shard-safe), ``"nic"``
  (firmware combining), or ``"switch"`` (Arctic in-network combining —
  the paper's headline mechanism).

Either way one *step* is the unit the SLO sees: ``offered`` counts
steps started, ``completed`` steps finished, and the latency
accumulator holds step times — so the ``traffic`` metrics section
reports training exactly like serving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List

from repro.common.errors import ConfigError
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.niu.niu import SP_SERVICE_QUEUE, needs_raw_addressing, vdst_for
from repro.traffic.firmware import ensure_traffic
from repro.traffic.kv import RX_LOGICAL, TX_INDEX
from repro.traffic.slo import SloRecorder
from repro.traffic.wire import pack_ps_push, unpack_ps_rep

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event

#: default step SLO: a synchronous step that takes longer than this is
#: a straggler round (200 µs of simulated time).
DEFAULT_STEP_SLO_NS = 200_000.0


def block_home(block: int, n_nodes: int) -> int:
    """The parameter server owning ``block`` (round-robin layout)."""
    return block % n_nodes


class TrainJob:
    """A synchronous data-parallel training job across every node."""

    def __init__(self, machine: "StarTVoyager", *, mode: str = "ps",
                 algo: str = "tree", n_blocks: int = 4, steps: int = 4,
                 slo_ns: float = DEFAULT_STEP_SLO_NS,
                 reliable: bool = False) -> None:
        if mode not in ("ps", "allreduce"):
            raise ConfigError(f"unknown training mode {mode!r}")
        ensure_traffic(machine)
        self.machine = machine
        self.mode = mode
        self.algo = algo
        self.n_blocks = n_blocks
        self.steps = steps
        self.slo_ns = slo_ns
        self.n_nodes = machine.config.n_nodes
        self.wide = needs_raw_addressing(self.n_nodes)
        self.reliable = reliable
        self._mpi = (MiniMPI(machine, algo=algo, reliable=reliable)
                     if mode == "allreduce" else None)

    def worker(self, node: int) -> Callable[["ApApi"], Generator]:
        """The aP training-loop program for one worker node."""
        if self.mode == "ps":
            return self._ps_worker(node)
        return self._allreduce_worker(node)

    def workers(self) -> List[Callable[["ApApi"], Generator]]:
        """One worker program per node, in node order."""
        return [self.worker(i) for i in range(self.n_nodes)]

    # -- parameter server ------------------------------------------------------

    def _ps_worker(self, node: int) -> Callable[["ApApi"], Generator]:
        board = self.machine.node(node)
        port = BasicPort(board, TX_INDEX, RX_LOGICAL)
        slo = SloRecorder(board, "ps", self.slo_ns)

        def send(api, home, payload):
            if self.reliable:
                yield from port.send_reliable(api, home, payload,
                                              dst_queue=SP_SERVICE_QUEUE,
                                              raw=self.wide)
            elif self.wide:
                yield from port.send(api, home, payload, raw=True,
                                     dst_queue=SP_SERVICE_QUEUE)
            else:
                yield from port.send(api, vdst_for(home, SP_SERVICE_QUEUE),
                                     payload)

        def program(api: "ApApi"):
            for step in range(self.steps):
                t0 = api.now
                slo.offer()
                # a deterministic "gradient": worker and step flavored
                for block in range(self.n_blocks):
                    grad = node + step + block + 1
                    home = block_home(block, self.n_nodes)
                    yield from send(api, home, pack_ps_push(
                        RX_LOGICAL, node, step, block, self.n_nodes, grad))
                # synchronous step: wait for every block's new weight
                for _ in range(self.n_blocks):
                    _src, payload = yield from port.recv(api)
                    unpack_ps_rep(payload)
                slo.complete(api.now - t0)

        return program

    # -- allreduce -------------------------------------------------------------

    def _allreduce_worker(self, node: int) -> Callable[["ApApi"], Generator]:
        board = self.machine.node(node)
        slo = SloRecorder(board, "ps", self.slo_ns)
        rank = self._mpi.rank(node)

        def program(api: "ApApi"):
            for step in range(self.steps):
                t0 = api.now
                slo.offer()
                for block in range(self.n_blocks):
                    grad = node + step + block + 1
                    yield from rank.allreduce(api, grad)
                slo.complete(api.now - t0)

        return program
