"""Production-traffic application layer: serving workloads with SLOs.

The platform subsystems answer "how fast is the mechanism"; this
package asks the question an operator would: *what latency distribution
does an application see under production-shaped load?*  Three
applications run on the messaging and firmware layers:

* a distributed **KV store** (:mod:`repro.traffic.kv`) — consistent-hash
  sharded, served by sP firmware, Zipf-skewed keys, PUTs over the
  Basic/TagOn/DMA paths, optional reliable delivery;
* a **parameter-server / allreduce training loop**
  (:mod:`repro.traffic.train`) — the same synchronous step through a
  central server or through flat/tree/nic/switch collectives;
* **microservice fan-out trees** (:mod:`repro.traffic.usvc`) — per-stage
  service times, tail-at-scale request shapes.

Load is open-loop by default (:mod:`repro.traffic.load`): seeded
Poisson or bursty MMPP arrivals with per-node schedules that depend
only on ``(seed, node)`` — deterministic at any ``--jobs`` or shard
count — plus replayable traces.  Per-request accounting
(:mod:`repro.traffic.slo`) flows into the ``traffic`` section of
``machine.metrics()`` with goodput and p50/p99/p99.9.
"""

from repro.traffic.firmware import ensure_traffic, setup_traffic
from repro.traffic.kv import KvClient, home_node
from repro.traffic.load import (
    MmppArrivals,
    PoissonArrivals,
    TraceRecord,
    ZipfKeys,
    dump_trace,
    load_trace,
    make_kv_trace,
    node_slice,
)
from repro.traffic.scenarios import (
    TRAFFIC_SCENARIOS,
    KvScenario,
    TrainScenario,
    UsvcScenario,
)
from repro.traffic.slo import DEFAULT_SLO_NS, SloRecorder
from repro.traffic.train import TrainJob, block_home
from repro.traffic.usvc import UsvcClient

__all__ = [
    "DEFAULT_SLO_NS",
    "KvClient",
    "KvScenario",
    "MmppArrivals",
    "PoissonArrivals",
    "SloRecorder",
    "TRAFFIC_SCENARIOS",
    "TraceRecord",
    "TrainJob",
    "TrainScenario",
    "UsvcClient",
    "UsvcScenario",
    "ZipfKeys",
    "block_home",
    "dump_trace",
    "ensure_traffic",
    "home_node",
    "load_trace",
    "make_kv_trace",
    "node_slice",
    "setup_traffic",
]
