"""Load generation: seeded arrival processes, key popularity, traces.

The production-traffic layer drives every application from *schedules*
computed up front, because determinism across ``--jobs`` and shard
counts demands it: a node's arrival times may depend only on the
workload seed, the node id, and the process parameters — never on
global sampling order, simulation state, or anything another node did.
Each generator therefore owns a private :class:`random.Random` seeded
from ``(seed, node)``, so shard K computing node 37's schedule draws
the identical sequence the unsharded machine would.

Three arrival shapes cover the datacenter-serving literature:

* :class:`PoissonArrivals` — memoryless open-loop load, the baseline
  every queueing result is stated against;
* :class:`MmppArrivals` — a two-state Markov-modulated Poisson process,
  the standard bursty-traffic model (quiet periods punctuated by
  arrival storms that stress tail latency far beyond the mean rate);
* closed-loop client pools live with the applications (a closed loop
  has no schedule — its "arrivals" are reply-triggered).

Key popularity is Zipf-skewed (:class:`ZipfKeys`): rank-``r`` keys draw
with weight ``1/r**skew``, the shape measured for memcached-style
workloads, and the reason hot-key incast is a first-class scenario.

Every schedule can be exported as a replayable trace
(:class:`TraceRecord` rows, JSON-lines via :func:`dump_trace` /
:func:`load_trace`) so a run can be reproduced, sliced per node, or
hand-edited into a regression case.
"""

from __future__ import annotations

import bisect
import json
import random
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.common.errors import ConfigError

#: mixing constants decoupling the per-node streams of one seed (large
#: odd multipliers; any collision would need node counts past 2**32).
_SEED_MIX = 0x9E3779B1
_NODE_MIX = 0x85EBCA77


def node_rng(seed: int, node: int, salt: int = 0) -> random.Random:
    """A private, deterministic generator for one node's draws.

    The stream depends only on ``(seed, node, salt)`` — the contract
    that makes schedules identical at any shard count and job count.
    ``salt`` separates independent uses on the same node (arrival times
    vs key draws) so adding one draw to a stream never shifts another.
    """
    return random.Random((seed & 0xFFFFFFFF) * _SEED_MIX
                         + node * _NODE_MIX + salt)


class PoissonArrivals:
    """Open-loop Poisson arrivals for one node.

    ``rate_rps`` is the node's offered load in requests per second of
    *simulated* time; inter-arrival gaps are exponential with mean
    ``1e9 / rate_rps`` nanoseconds.
    """

    kind = "poisson"

    def __init__(self, rate_rps: float, seed: int = 0, node: int = 0,
                 start_ns: float = 0.0) -> None:
        if rate_rps <= 0:
            raise ConfigError(f"arrival rate must be positive: {rate_rps}")
        self.rate_rps = rate_rps
        self.seed = seed
        self.node = node
        self.start_ns = start_ns

    def schedule(self, n: int) -> List[float]:
        """The node's first ``n`` arrival times (ns, ascending)."""
        rng = node_rng(self.seed, self.node, salt=1)
        rate_per_ns = self.rate_rps / 1e9
        t = self.start_ns
        out: List[float] = []
        for _ in range(n):
            t += rng.expovariate(rate_per_ns)
            out.append(t)
        return out


class MmppArrivals:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates exponentially-distributed sojourns in a
    *quiet* state (``rate_rps``) and a *burst* state (``rate_rps *
    burst_factor``); within a sojourn, arrivals are Poisson at the
    state's rate.  Mean sojourn lengths come from ``quiet_ns`` /
    ``burst_ns``.  The long-run mean rate sits between the two state
    rates, but the tail behaviour is dominated by the bursts — the
    point of using an MMPP at all.
    """

    kind = "mmpp"

    def __init__(self, rate_rps: float, seed: int = 0, node: int = 0,
                 burst_factor: float = 8.0, quiet_ns: float = 200_000.0,
                 burst_ns: float = 50_000.0, start_ns: float = 0.0) -> None:
        if rate_rps <= 0:
            raise ConfigError(f"arrival rate must be positive: {rate_rps}")
        if burst_factor < 1.0:
            raise ConfigError(
                f"burst factor must be >= 1 (got {burst_factor})")
        if quiet_ns <= 0 or burst_ns <= 0:
            raise ConfigError("MMPP sojourn means must be positive")
        self.rate_rps = rate_rps
        self.burst_factor = burst_factor
        self.quiet_ns = quiet_ns
        self.burst_ns = burst_ns
        self.seed = seed
        self.node = node
        self.start_ns = start_ns

    def schedule(self, n: int) -> List[float]:
        """The node's first ``n`` arrival times (ns, ascending)."""
        rng = node_rng(self.seed, self.node, salt=2)
        rates = (self.rate_rps / 1e9,
                 self.rate_rps * self.burst_factor / 1e9)
        sojourns = (self.quiet_ns, self.burst_ns)
        state = 0
        t = self.start_ns
        state_end = t + rng.expovariate(1.0 / sojourns[state])
        out: List[float] = []
        while len(out) < n:
            gap = rng.expovariate(rates[state])
            if t + gap >= state_end:
                # no arrival before the state flips; advance the clock
                # to the transition and redraw in the new state
                t = state_end
                state = 1 - state
                state_end = t + rng.expovariate(1.0 / sojourns[state])
                continue
            t += gap
            out.append(t)
        return out


class ZipfKeys:
    """Zipf-skewed key draws over ``n_keys`` keys for one node.

    Key ``k`` has popularity rank ``k + 1`` (key 0 is the hottest), so
    hot-key incast scenarios can target key 0 knowingly.  The CDF is
    precomputed once; each draw is one uniform plus one bisect.
    ``skew=0`` degrades to uniform.
    """

    def __init__(self, n_keys: int, skew: float = 1.1, seed: int = 0,
                 node: int = 0) -> None:
        if n_keys < 1:
            raise ConfigError("need at least one key")
        if skew < 0:
            raise ConfigError(f"Zipf skew must be non-negative: {skew}")
        self.n_keys = n_keys
        self.skew = skew
        self._rng = node_rng(seed, node, salt=3)
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, n_keys + 1):
            total += rank ** -skew
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def draw(self) -> int:
        """One key id (0-based, 0 = hottest)."""
        u = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)


# ----------------------------------------------------------------------
# replayable traces
# ----------------------------------------------------------------------


class TraceRecord(NamedTuple):
    """One scheduled request of a traffic workload."""

    time_ns: float  #: scheduled (open-loop) arrival time
    node: int  #: client node issuing the request
    op: str  #: application operation ("get", "put", "range", ...)
    key: int  #: key / block / tree id the request addresses
    size: int  #: payload bytes (0 where the op carries none)


def make_kv_trace(n_nodes: int, per_node: int, rate_rps: float, *,
                  seed: int = 0, n_keys: int = 256, skew: float = 1.1,
                  put_fraction: float = 0.25, range_fraction: float = 0.0,
                  value_bytes: int = 8, process: str = "poisson",
                  burst_factor: float = 8.0) -> List[TraceRecord]:
    """A complete KV-store trace: every node's schedule, merged in time.

    Built per node from the seeded generators above and merged on
    ``(time_ns, node)``, so the trace is byte-identical however many
    processes or shards later replay it.
    """
    if not (0.0 <= put_fraction + range_fraction <= 1.0):
        raise ConfigError("op fractions must sum to at most 1")
    records: List[TraceRecord] = []
    for node in range(n_nodes):
        if process == "poisson":
            arrivals = PoissonArrivals(rate_rps, seed=seed, node=node)
        elif process == "mmpp":
            arrivals = MmppArrivals(rate_rps, seed=seed, node=node,
                                    burst_factor=burst_factor)
        else:
            raise ConfigError(f"unknown arrival process {process!r}")
        keys = ZipfKeys(n_keys, skew=skew, seed=seed, node=node)
        ops = node_rng(seed, node, salt=4)
        for t in arrivals.schedule(per_node):
            u = ops.random()
            if u < put_fraction:
                op, size = "put", value_bytes
            elif u < put_fraction + range_fraction:
                op, size = "range", 0
            else:
                op, size = "get", 0
            records.append(TraceRecord(t, node, op, keys.draw(), size))
    records.sort(key=lambda r: (r.time_ns, r.node))
    return records


def node_slice(records: Iterable[TraceRecord], node: int
               ) -> List[TraceRecord]:
    """The sub-trace one client node replays (original time order)."""
    return [r for r in records if r.node == node]


def dump_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize a trace as JSON lines (one record per line)."""
    return "\n".join(
        json.dumps([r.time_ns, r.node, r.op, r.key, r.size])
        for r in records)


def load_trace(text: str) -> List[TraceRecord]:
    """Parse a JSON-lines trace back into records."""
    out: List[TraceRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        t, node, op, key, size = json.loads(line)
        out.append(TraceRecord(float(t), int(node), str(op), int(key),
                               int(size)))
    return out
