"""Distributed KV store: client side.

Keys are sharded across every node by a consistent hash (CRC32 — NOT
Python's salted ``hash()``, which would change between interpreter
runs); each node's sP serves its shard through the firmware handlers in
:mod:`repro.traffic.firmware`.  A client node runs an open-loop pair of
aP programs (a sender replaying its arrival schedule and a receiver
matching replies) or a single closed-loop windowed program.

The sender/receiver split leans on a :class:`~repro.mp.basic.BasicPort`
property: the send path touches only the tx pointer mirrors and the
receive path only the rx mirrors, so one sender process and one
receiver process may safely share a port.  Traffic claims tx queue 1 /
rx logical queue 1 — queue 0 belongs to ad-hoc user programs and queue
2 to MiniMPI, so all three can coexist in one experiment.

PUT values travel three ways (``transport=``):

* ``"basic"`` — inline in the request payload;
* ``"tagon"`` — as a TagOn attachment the NIU appends at delivery
  (identical server path; values are padded to the 48-byte TagOn unit);
* ``"dma"`` — bulk data by RDMA-write into a per-request staging slot
  on the home node, followed by a by-reference PUT; the server polls
  the slot's trailing doorbell token, so the control message may freely
  race the block-transfer data.

Any transport can additionally ride ``reliable=True`` (firmware
go-back-N) for the *request* leg, except ``"tagon"`` — the reliable
path cannot carry attachments.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Sequence

from repro.common.errors import ConfigError
from repro.firmware.proto import pack_dma_req
from repro.mp.basic import BasicPort
from repro.niu.niu import (
    NOTIFY_QUEUE,
    SP_SERVICE_QUEUE,
    needs_raw_addressing,
    vdst_for,
)
from repro.traffic.firmware import ensure_traffic
from repro.traffic.load import TraceRecord
from repro.traffic.slo import DEFAULT_SLO_NS, SloRecorder
from repro.traffic.wire import (
    KV_GET,
    KV_PUT,
    KV_RANGE,
    pack_kv_putref,
    pack_kv_req,
    unpack_kv_rep,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard
    from repro.sim.events import Event

#: the traffic layer's queue claim (0 = ad-hoc users, 2 = MiniMPI).
TX_INDEX = 1
RX_LOGICAL = 1

#: DRAM staging for DMA PUTs: source ring on the client, destination
#: slots on the server, well above the addresses the platform tests use
#: (DRAM is 8 MB; 64 clients x 32 slots x 128 B = 256 KB).
_DMA_SRC_BASE = 0x200000
_DMA_DST_BASE = 0x300000
_DMA_RING = 32
_DMA_SLOT = 128


def home_node(key: int, n_nodes: int) -> int:
    """The node serving ``key`` (CRC32 consistent hash)."""
    return zlib.crc32(key.to_bytes(4, "big")) % n_nodes


def _value_bytes(req_id: int, size: int) -> bytes:
    """Deterministic value content derived from the request id."""
    return (req_id.to_bytes(4, "big") * ((size + 3) // 4))[:size]


class KvClient:
    """One node's KV client: issues a trace, accounts every reply."""

    def __init__(self, machine: "StarTVoyager", node: "NodeBoard", *,
                 slo_ns: float = DEFAULT_SLO_NS, transport: str = "basic",
                 reliable: bool = False, range_count: int = 4) -> None:
        if transport not in ("basic", "tagon", "dma"):
            raise ConfigError(f"unknown KV transport {transport!r}")
        if transport == "tagon" and reliable:
            raise ConfigError(
                "reliable delivery cannot carry TagOn attachments")
        ensure_traffic(machine)
        self.machine = machine
        self.node = node
        self.me = node.node_id
        self.n_nodes = machine.config.n_nodes
        self.wide = needs_raw_addressing(self.n_nodes)
        self.transport = transport
        self.reliable = reliable
        self.range_count = range_count
        self.port = BasicPort(node, TX_INDEX, RX_LOGICAL)
        self.slo = SloRecorder(node, "kv", slo_ns)
        #: req_id -> scheduled arrival time (open loop) / send time.
        self.inflight: Dict[int, float] = {}
        self._next_req = 0
        self._tagon_staging = (node.niu.alloc_asram(80, align=16)
                               if transport == "tagon" else 0)

    # -- request plumbing ------------------------------------------------------

    def _send(self, api: "ApApi", home: int, payload: bytes, tagon=None
              ) -> Generator["Event", None, None]:
        if self.reliable:
            yield from self.port.send_reliable(
                api, home, payload, dst_queue=SP_SERVICE_QUEUE,
                raw=self.wide)
        elif self.wide:
            yield from self.port.send(api, home, payload, tagon=tagon,
                                      raw=True, dst_queue=SP_SERVICE_QUEUE)
        else:
            yield from self.port.send(api, vdst_for(home, SP_SERVICE_QUEUE),
                                      payload, tagon=tagon)

    def _issue(self, api: "ApApi", rec: TraceRecord, sched_ns: float
               ) -> Generator["Event", None, None]:
        req_id = self._next_req
        self._next_req += 1
        self.inflight[req_id] = sched_ns
        self.slo.offer()
        home = home_node(rec.key, self.n_nodes)
        if rec.op == "get":
            yield from self._send(api, home, pack_kv_req(
                KV_GET, RX_LOGICAL, self.me, req_id, rec.key))
        elif rec.op == "range":
            yield from self._send(api, home, pack_kv_req(
                KV_RANGE, RX_LOGICAL, self.me, req_id, rec.key,
                count=self.range_count))
        elif rec.op == "put":
            yield from self._put(api, home, req_id, rec)
        else:
            raise ConfigError(f"unknown KV trace op {rec.op!r}")

    def _put(self, api: "ApApi", home: int, req_id: int, rec: TraceRecord
             ) -> Generator["Event", None, None]:
        value = _value_bytes(req_id, rec.size)
        if self.transport == "basic":
            yield from self._send(api, home, pack_kv_req(
                KV_PUT, RX_LOGICAL, self.me, req_id, rec.key, value=value))
        elif self.transport == "tagon":
            tagon = yield from self.port.stage_tagon(
                api, self._tagon_staging, value)
            yield from self._send(api, home, pack_kv_req(
                KV_PUT, RX_LOGICAL, self.me, req_id, rec.key), tagon=tagon)
        else:  # dma
            # stage value + doorbell locally, RDMA it into the home's
            # per-request slot, then race the by-reference PUT after it
            src = _DMA_SRC_BASE + (req_id % _DMA_RING) * _DMA_SLOT
            dst = _DMA_DST_BASE + (
                self.me * _DMA_RING + req_id % _DMA_RING) * _DMA_SLOT
            staged = value + req_id.to_bytes(4, "big")
            yield from api.store(src, staged)
            dma = pack_dma_req(src, home, dst, len(staged), NOTIFY_QUEUE, 3)
            # the DMA request is a loopback hop into the local sP —
            # lossless, so it never needs the reliable path
            if self.wide:
                yield from self.port.send(api, self.me, dma, raw=True,
                                          dst_queue=SP_SERVICE_QUEUE)
            else:
                yield from self.port.send(
                    api, vdst_for(self.me, SP_SERVICE_QUEUE), dma)
            yield from self._send(api, home, pack_kv_putref(
                RX_LOGICAL, self.me, req_id, rec.key, dst, len(value)))

    def _complete(self, api: "ApApi", payload: bytes) -> None:
        _status, req_id, _value = unpack_kv_rep(payload)
        sched = self.inflight.pop(req_id)
        self.slo.complete(api.now - sched)

    # -- driver programs -------------------------------------------------------

    def open_loop(self, records: Sequence[TraceRecord]
                  ) -> List[Callable[["ApApi"], Generator]]:
        """Open-loop sender+receiver program pair for this node's trace.

        The sender replays the schedule (sleeping up to each arrival,
        *never* waiting for replies); the receiver matches completions
        against the scheduled times, so queueing delay anywhere in the
        system lands in the measured latency.
        """
        total = len(records)

        def sender(api: "ApApi"):
            for rec in records:
                if rec.time_ns > api.now:
                    yield from api.sleep(rec.time_ns - api.now)
                yield from self._issue(api, rec, rec.time_ns)

        def receiver(api: "ApApi"):
            notify = (BasicPort(self.node, 0, NOTIFY_QUEUE)
                      if self.transport == "dma" else None)
            done = 0
            while done < total:
                if notify is None:
                    _src, payload = yield from self.port.recv(api)
                    self._complete(api, payload)
                    done += 1
                    continue
                # DMA mode: also drain the (unused) transfer-complete
                # notifications so NOTIFY_QUEUE never backs up
                msg = yield from self.port.poll(api)
                if msg is not None:
                    self._complete(api, msg[1])
                    done += 1
                else:
                    yield from notify.poll(api)
                    yield from api.compute(50)

        return [sender, receiver]

    def closed_loop(self, records: Sequence[TraceRecord], window: int = 4
                    ) -> Callable[["ApApi"], Generator]:
        """A windowed closed-loop client: at most ``window`` outstanding.

        The trace's timestamps are ignored — a closed loop issues the
        next request when a slot frees, so it self-throttles at
        saturation (and is exactly the load shape that *hides* the
        open-loop knee; both exist so benchmarks can show the contrast).
        """
        def client(api: "ApApi"):
            issued = 0
            outstanding = 0
            while issued < len(records) or outstanding:
                while issued < len(records) and outstanding < window:
                    yield from self._issue(api, records[issued], api.now)
                    issued += 1
                    outstanding += 1
                _src, payload = yield from self.port.recv(api)
                self._complete(api, payload)
                outstanding -= 1

        return client
