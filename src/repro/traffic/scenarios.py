"""Shard-aware scenarios for the traffic applications.

These plug the serving workloads into the same
:class:`~repro.shard.scenarios.ShardScenario` machinery the platform
scenarios use, so ``repro.shard.runner`` (and therefore the benches,
the parity tests, and CI) can run them at any node count and — for the
shard-safe ones — any shard count:

``traffic_kv``     open- or closed-loop KV store load (shard-safe: the
                   arrival schedules derive only from seed+node).
``traffic_train``  parameter-server or allreduce training steps; the
                   ``"nic"``/``"switch"`` collective algos pin
                   ``shards=1`` exactly like the coherent scenarios.
``traffic_usvc``   microservice fan-out trees (shard-safe).

Every scenario seeds its load from ``config.seed`` unless given an
explicit ``seed``, so two runs of one config are identical and two
seeds give distinct schedules.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.shard.scenarios import ShardScenario
from repro.traffic.load import (
    MmppArrivals,
    PoissonArrivals,
    TraceRecord,
    make_kv_trace,
    node_rng,
    node_slice,
)
from repro.traffic.slo import DEFAULT_SLO_NS


class KvScenario(ShardScenario):
    """The KV store under seeded open-loop (or closed-loop) load."""

    name = "traffic_kv"

    def __init__(self, per_node: int = 8, rate_rps: float = 100_000.0,
                 n_keys: int = 256, skew: float = 1.1,
                 put_fraction: float = 0.25, range_fraction: float = 0.0,
                 value_bytes: int = 8, process: str = "poisson",
                 transport: str = "basic", reliable: bool = False,
                 slo_ns: float = DEFAULT_SLO_NS, seed: int = None,
                 closed_loop: bool = False, window: int = 4,
                 trace: List[TraceRecord] = None) -> None:
        self.per_node = per_node
        self.rate_rps = rate_rps
        self.n_keys = n_keys
        self.skew = skew
        self.put_fraction = put_fraction
        self.range_fraction = range_fraction
        self.value_bytes = value_bytes
        self.process = process
        self.transport = transport
        self.reliable = reliable
        self.slo_ns = slo_ns
        self.seed = seed
        self.closed_loop = closed_loop
        self.window = window
        #: an explicit replay trace overrides the generated schedules.
        self.trace = trace

    def _records(self, machine) -> List[TraceRecord]:
        if self.trace is not None:
            return self.trace
        seed = self.seed if self.seed is not None else machine.config.seed
        return make_kv_trace(
            machine.config.n_nodes, self.per_node, self.rate_rps,
            seed=seed, n_keys=self.n_keys, skew=self.skew,
            put_fraction=self.put_fraction,
            range_fraction=self.range_fraction,
            value_bytes=self.value_bytes, process=self.process)

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.traffic.kv import KvClient

        trace = self._records(machine)
        clients = ctx.setdefault("clients", [])
        for node in local_nodes:
            records = node_slice(trace, node)
            client = KvClient(machine, machine.node(node),
                              slo_ns=self.slo_ns, transport=self.transport,
                              reliable=self.reliable)
            clients.append(client)
            if self.closed_loop:
                machine.spawn(node, client.closed_loop(records, self.window))
            else:
                for prog in client.open_loop(records):
                    machine.spawn(node, prog)

    def result(self, machine, local_nodes, ctx) -> Dict[str, int]:
        clients = ctx.get("clients", [])
        return {
            "offered": sum(c.slo.offered.value for c in clients),
            "completed": sum(c.slo.completed.value for c in clients),
            "slo_violations": sum(c.slo.violations.value for c in clients),
        }


class TrainScenario(ShardScenario):
    """Synchronous training steps: parameter server or allreduce."""

    name = "traffic_train"

    def __init__(self, mode: str = "ps", algo: str = "tree",
                 n_blocks: int = 4, steps: int = 4,
                 reliable: bool = False, slo_ns: float = None) -> None:
        self.mode = mode
        self.algo = algo
        self.n_blocks = n_blocks
        self.steps = steps
        self.reliable = reliable
        self.slo_ns = slo_ns

    def prepare(self, config: MachineConfig) -> None:
        # the hardware-assisted collectives install machine-wide firmware
        # and switch state; like the coherent scenarios they need the
        # whole machine in one engine
        if (self.mode == "allreduce" and self.algo in ("nic", "switch")
                and config.shards > 1):
            raise ConfigError(
                f"scenario {self.name!r} with algo={self.algo!r} requires "
                f"shards=1 (machine-wide collective state)")

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.traffic.train import DEFAULT_STEP_SLO_NS, TrainJob

        job = ctx.get("job")
        if job is None:
            slo = (self.slo_ns if self.slo_ns is not None
                   else DEFAULT_STEP_SLO_NS)
            job = ctx["job"] = TrainJob(
                machine, mode=self.mode, algo=self.algo,
                n_blocks=self.n_blocks, steps=self.steps, slo_ns=slo,
                reliable=self.reliable)
        for node in local_nodes:
            machine.spawn(node, job.worker(node))

    def result(self, machine, local_nodes, ctx) -> Dict[str, Any]:
        job = ctx.get("job")
        weights: Dict[int, int] = {}
        if job is not None and job.mode == "ps":
            for node in local_nodes:
                st = machine.node(node).sp.state.get("traffic")
                if st is not None:
                    weights.update(st.ps_weights)
        return {"steps": self.steps, "weights": weights}


class UsvcScenario(ShardScenario):
    """Open-loop microservice fan-out trees."""

    name = "traffic_usvc"

    def __init__(self, per_node: int = 4, rate_rps: float = 20_000.0,
                 depth: int = 2, fanout: int = 2, svc_insns: int = 200,
                 process: str = "poisson", reliable: bool = False,
                 slo_ns: float = None, seed: int = None) -> None:
        self.per_node = per_node
        self.rate_rps = rate_rps
        self.depth = depth
        self.fanout = fanout
        self.svc_insns = svc_insns
        self.process = process
        self.reliable = reliable
        self.slo_ns = slo_ns
        self.seed = seed

    def setup(self, phase: int, machine, local_nodes, ctx) -> None:
        from repro.traffic.usvc import DEFAULT_TREE_SLO_NS, UsvcClient

        n = machine.config.n_nodes
        seed = self.seed if self.seed is not None else machine.config.seed
        slo = (self.slo_ns if self.slo_ns is not None
               else DEFAULT_TREE_SLO_NS)
        clients = ctx.setdefault("clients", [])
        for node in local_nodes:
            if self.process == "mmpp":
                arrivals = MmppArrivals(self.rate_rps, seed=seed, node=node)
            else:
                arrivals = PoissonArrivals(self.rate_rps, seed=seed,
                                           node=node)
            entries = node_rng(seed, node, salt=5)
            records = [TraceRecord(t, node, "tree", entries.randrange(n), 0)
                       for t in arrivals.schedule(self.per_node)]
            client = UsvcClient(machine, machine.node(node),
                                depth=self.depth, fanout=self.fanout,
                                svc_insns=self.svc_insns, slo_ns=slo,
                                reliable=self.reliable)
            clients.append(client)
            for prog in client.open_loop(records):
                machine.spawn(node, prog)

    def result(self, machine, local_nodes, ctx) -> Dict[str, int]:
        clients = ctx.get("clients", [])
        return {
            "offered": sum(c.slo.offered.value for c in clients),
            "completed": sum(c.slo.completed.value for c in clients),
        }


#: merged into the shard-scenario registry by repro.shard.scenarios.
TRAFFIC_SCENARIOS = {
    KvScenario.name: KvScenario,
    TrainScenario.name: TrainScenario,
    UsvcScenario.name: UsvcScenario,
}
