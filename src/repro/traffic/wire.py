"""Traffic wire formats: application messages above ``MSG_USER``.

The serving applications speak the same sP-firmware dialect as the
platform protocols (type byte first, big-endian fixed-width fields,
everything inside the 88-byte Basic payload cap — and inside the
84-byte reliable-segment cap, so every request can also ride
``reliable=True``).  Type values start at ``MSG_USER``, the first
value :mod:`repro.firmware.proto` leaves free for applications.

A deliberate trick: a KV PUT's value is always *the trailing bytes* of
the delivered payload.  The Basic transport packs the value inline, and
the TagOn transport attaches it at the NIU — which appends it to the
delivered payload in exactly the same place.  The server-side handler
is therefore byte-for-byte identical for both transports; only the
client changes.  The DMA transport sends the value out of band
(``dma_write`` into a server staging buffer) and follows with a
by-reference PUT carrying ``(addr, length)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import FirmwareError
from repro.firmware.proto import MSG_USER, _addr6

# message types ---------------------------------------------------------------
MSG_KV_REQ = MSG_USER  #: client -> server sP: get/put/range (value trailing)
MSG_KV_REP = MSG_USER + 1  #: server sP -> client: status + value bytes
MSG_PS_PUSH = MSG_USER + 2  #: worker -> parameter server sP: gradient push
MSG_PS_REP = MSG_USER + 3  #: parameter server sP -> worker: updated weight
MSG_USVC_REQ = MSG_USER + 4  #: parent -> child sP: fan-out stage request
MSG_USVC_REP = MSG_USER + 5  #: child sP -> parent: stage complete
MSG_KV_PUTREF = MSG_USER + 6  #: client -> server sP: PUT by DMA reference

# KV operations (the ``op`` byte of ``MSG_KV_REQ``).
KV_GET = 0
KV_PUT = 1
KV_RANGE = 2

# KV reply status byte.
KV_OK = 0
KV_MISS = 1


def pack_kv_req(op: int, reply_queue: int, origin: int, req_id: int,
                key: int, count: int = 0, value: bytes = b"") -> bytes:
    """KV request; for ``KV_PUT`` the value rides as the trailing bytes
    (inline) or as a TagOn attachment (delivered to the same place)."""
    return (bytes([MSG_KV_REQ, op, reply_queue])
            + origin.to_bytes(2, "big") + req_id.to_bytes(4, "big")
            + key.to_bytes(4, "big") + count.to_bytes(2, "big") + value)


def unpack_kv_req(p: bytes) -> Tuple[int, int, int, int, int, int, bytes]:
    """Returns (op, reply_queue, origin, req_id, key, count, value)."""
    if p[0] != MSG_KV_REQ or len(p) < 13:
        raise FirmwareError(f"not a KV request: {p!r}")
    return (p[1], p[2], int.from_bytes(p[3:5], "big"),
            int.from_bytes(p[5:9], "big"), int.from_bytes(p[9:13], "big"),
            int.from_bytes(p[13:15], "big"), p[15:])


def pack_kv_rep(status: int, req_id: int, value: bytes = b"") -> bytes:
    """KV reply: status, echoed request id, value bytes (GET/RANGE)."""
    return (bytes([MSG_KV_REP, status]) + req_id.to_bytes(4, "big") + value)


def unpack_kv_rep(p: bytes) -> Tuple[int, int, bytes]:
    """Returns (status, req_id, value)."""
    if p[0] != MSG_KV_REP or len(p) < 6:
        raise FirmwareError(f"not a KV reply: {p!r}")
    return p[1], int.from_bytes(p[2:6], "big"), p[6:]


def pack_kv_putref(reply_queue: int, origin: int, req_id: int, key: int,
                   addr: int, length: int) -> bytes:
    """PUT by reference: the value already sits at ``addr`` in the
    server's DRAM (staged there by a client DMA)."""
    return (bytes([MSG_KV_PUTREF, 0, reply_queue])
            + origin.to_bytes(2, "big") + req_id.to_bytes(4, "big")
            + key.to_bytes(4, "big") + _addr6(addr)
            + length.to_bytes(4, "big"))


def unpack_kv_putref(p: bytes) -> Tuple[int, int, int, int, int, int]:
    """Returns (reply_queue, origin, req_id, key, addr, length)."""
    if p[0] != MSG_KV_PUTREF or len(p) < 23:
        raise FirmwareError(f"not a KV put-by-reference: {p!r}")
    return (p[2], int.from_bytes(p[3:5], "big"),
            int.from_bytes(p[5:9], "big"), int.from_bytes(p[9:13], "big"),
            int.from_bytes(p[13:19], "big"), int.from_bytes(p[19:23], "big"))


def pack_ps_push(reply_queue: int, origin: int, step: int, block: int,
                 n_workers: int, grad: int) -> bytes:
    """Worker gradient push for one parameter block of one step."""
    return (bytes([MSG_PS_PUSH, reply_queue]) + origin.to_bytes(2, "big")
            + step.to_bytes(4, "big") + block.to_bytes(4, "big")
            + n_workers.to_bytes(2, "big")
            + grad.to_bytes(8, "big", signed=True))


def unpack_ps_push(p: bytes) -> Tuple[int, int, int, int, int, int]:
    """Returns (reply_queue, origin, step, block, n_workers, grad)."""
    if p[0] != MSG_PS_PUSH or len(p) < 22:
        raise FirmwareError(f"not a PS push: {p!r}")
    return (p[1], int.from_bytes(p[2:4], "big"),
            int.from_bytes(p[4:8], "big"), int.from_bytes(p[8:12], "big"),
            int.from_bytes(p[12:14], "big"),
            int.from_bytes(p[14:22], "big", signed=True))


def pack_ps_rep(step: int, block: int, weight: int) -> bytes:
    """Parameter-server broadcast of the updated weight to one worker."""
    return (bytes([MSG_PS_REP, 0]) + step.to_bytes(4, "big")
            + block.to_bytes(4, "big")
            + weight.to_bytes(8, "big", signed=True))


def unpack_ps_rep(p: bytes) -> Tuple[int, int, int]:
    """Returns (step, block, weight)."""
    if p[0] != MSG_PS_REP or len(p) < 18:
        raise FirmwareError(f"not a PS reply: {p!r}")
    return (int.from_bytes(p[2:6], "big"), int.from_bytes(p[6:10], "big"),
            int.from_bytes(p[10:18], "big", signed=True))


def pack_usvc_req(depth: int, fanout: int, reply_queue: int, origin: int,
                  ctx: int, svc_insns: int) -> bytes:
    """Fan-out stage request.

    ``ctx`` is an opaque token the replier echoes back: the client sets
    it to its request id; an interior sP sets it to a locally unique
    pending-table key before forwarding to its children, so a node that
    appears twice in one request's tree never confuses the replies.
    """
    return (bytes([MSG_USVC_REQ, depth, fanout, reply_queue])
            + origin.to_bytes(2, "big") + ctx.to_bytes(4, "big")
            + svc_insns.to_bytes(4, "big"))


def unpack_usvc_req(p: bytes) -> Tuple[int, int, int, int, int, int]:
    """Returns (depth, fanout, reply_queue, origin, ctx, svc_insns)."""
    if p[0] != MSG_USVC_REQ or len(p) < 14:
        raise FirmwareError(f"not a microservice request: {p!r}")
    return (p[1], p[2], p[3], int.from_bytes(p[4:6], "big"),
            int.from_bytes(p[6:10], "big"), int.from_bytes(p[10:14], "big"))


def pack_usvc_rep(ctx: int) -> bytes:
    """Stage-complete reply carrying the echoed context token."""
    return bytes([MSG_USVC_REP, 0]) + ctx.to_bytes(4, "big")


def unpack_usvc_rep(p: bytes) -> int:
    """Returns the echoed context token."""
    if p[0] != MSG_USVC_REP or len(p) < 6:
        raise FirmwareError(f"not a microservice reply: {p!r}")
    return int.from_bytes(p[2:6], "big")
