"""Bus operation types and transactions (60X-bus-like).

The 604's memory bus supports single-beat and burst (cache-line)
transfers, coherence operations, and a retry-based snoop protocol.  The
StarT-Voyager NIU exploits exactly this repertoire: the aBIU observes
every operation, may claim it, retry it, or forward it — and may itself
*issue* operations on behalf of CTRL or sP firmware ("moving control
information over data paths and data information over control paths").
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class BusOpType(enum.Enum):
    """The transfer-type repertoire used by the model."""

    #: single-beat read (uncached load), 1..8 bytes.
    READ = "read"
    #: single-beat write (uncached store), 1..8 bytes.
    WRITE = "write"
    #: burst read of one cache line (cache fill, NIU block read).
    READ_LINE = "read_line"
    #: burst read with intent to modify (store miss fill).
    RWITM = "rwitm"
    #: burst write of one cache line (writeback, NIU data push).
    WRITE_LINE = "write_line"
    #: invalidate the line in all caches without data transfer.
    KILL = "kill"
    #: force a modified line out of caches to memory.
    FLUSH = "flush"

    @property
    def is_burst(self) -> bool:
        """True for full-cache-line transfers."""
        return self in (BusOpType.READ_LINE, BusOpType.RWITM, BusOpType.WRITE_LINE)

    @property
    def is_read(self) -> bool:
        """True when the master receives data."""
        return self in (BusOpType.READ, BusOpType.READ_LINE, BusOpType.RWITM)

    @property
    def is_write(self) -> bool:
        """True when the master supplies data."""
        return self in (BusOpType.WRITE, BusOpType.WRITE_LINE)

    @property
    def has_data(self) -> bool:
        """True when a data tenure occurs at all."""
        return self not in (BusOpType.KILL, BusOpType.FLUSH)


_txn_ids = itertools.count()


class BusTransaction:
    """One bus operation: address/control signals plus the data tenure.

    ``data`` is the write payload for writes, and is filled in with the
    read result for reads.  ``master`` is a diagnostic label.  ``tag`` is
    a free slot the issuing unit can use to smuggle context to a handler —
    the NIU's "address as information" trick uses the *address* for that,
    but pure-model bookkeeping (e.g. which L2 initiated a fill) rides here.
    """

    __slots__ = (
        "txn_id",
        "op",
        "addr",
        "size",
        "data",
        "master",
        "tag",
        "retries",
        "intervened",
    )

    def __init__(
        self,
        op: BusOpType,
        addr: int,
        size: int,
        data: Optional[bytes] = None,
        master: str = "?",
        tag: Any = None,
    ) -> None:
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        if op in (BusOpType.READ, BusOpType.WRITE) and size > 8:
            raise ValueError(f"single-beat op limited to 8 bytes, got {size}")
        if op.is_write:
            if data is None or len(data) != size:
                raise ValueError(f"{op.value} needs exactly {size} bytes of data")
        self.txn_id = next(_txn_ids)
        self.op = op
        self.addr = addr
        self.size = size
        self.data = data
        self.master = master
        self.tag = tag
        #: number of snoop retries this transaction has absorbed.
        self.retries = 0
        #: set when a snooping cache supplied the data instead of memory.
        self.intervened = False

    def line_base(self, line_bytes: int) -> int:
        """Base address of the cache line this transaction touches."""
        return self.addr & ~(line_bytes - 1)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<BusTxn#{self.txn_id} {self.op.value} @{self.addr:#x} "
            f"size={self.size} by {self.master}>"
        )
