"""The 60X-style coherent memory bus: operations, snooping, transport."""

from repro.bus.bus import MemoryBus
from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import BusSlave, Snooper, SnoopResult

__all__ = [
    "MemoryBus",
    "BusOpType",
    "BusTransaction",
    "BusSlave",
    "Snooper",
    "SnoopResult",
]
