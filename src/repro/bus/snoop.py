"""Snooping protocol pieces.

Every bus-attached agent with coherence or address-claiming interest
implements :class:`Snooper`.  During the address tenure the bus presents
the transaction to every snooper (other than the master) and combines the
responses:

* any ``RETRY``   → the master loses the tenure and must re-arbitrate.
  This is the mechanism S-COMA rides: the aBIU retries reads of lines
  whose clsSRAM state says "not here yet".  What the states *mean* —
  and how the home-node directory moves them — is defined once in
  :mod:`repro.coherence.protocol`; snoopers only carry the mechanism.
* any ``CLAIM``   → that snooper serves the data tenure instead of the
  address-map owner (the aBIU claims all NIU windows; a modified L2 line
  claims a fill and intervenes with its data).
* all ``OK``      → the region owner from the address map serves it.

At most one snooper may claim a given transaction — two claimants is a
hardware design error and the model raises.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.ops import BusTransaction
    from repro.sim.events import Event


class SnoopResult(enum.Enum):
    """One snooper's verdict on an address tenure."""

    OK = "ok"
    RETRY = "retry"
    CLAIM = "claim"


class Snooper:
    """Interface for bus-snooping agents (L2 cache, aBIU, ...)."""

    #: diagnostic name shown in traces and errors.
    snooper_name: str = "snooper"

    def snoop(self, txn: "BusTransaction") -> SnoopResult:
        """Address-tenure decision.  Must not consume simulated time.

        Side effects are allowed and essential: the aBIU records misses and
        pokes firmware from inside ``snoop`` before answering RETRY.
        """
        raise NotImplementedError

    def serve(
        self, txn: "BusTransaction"
    ) -> Generator["Event", None, Optional[bytes]]:
        """Data tenure for a transaction this snooper claimed.

        A process fragment (may yield timing events).  For reads it returns
        the data bytes; for writes it consumes ``txn.data`` and returns
        None.  Only called after this snooper answered CLAIM.
        """
        raise NotImplementedError


class BusSlave:
    """Interface for address-mapped targets (DRAM controller, ROM...).

    Unlike a :class:`Snooper`, a slave never votes during the snoop
    window; it simply serves transactions whose address falls in a region
    that names it as owner.
    """

    slave_name: str = "slave"

    def access(
        self, txn: "BusTransaction"
    ) -> Generator["Event", None, Optional[bytes]]:
        """Serve the data tenure; same contract as :meth:`Snooper.serve`."""
        raise NotImplementedError
