"""The coherent memory bus (60X-style).

One bus per node, shared by the aP (through its L2), the memory
controller, and the NIU's aBIU.  The model serializes each transaction —
arbitration, address tenure, snoop window, data tenure — while the bus is
held.  The real 60X pipelines address and data tenures; collapsing them
costs some absolute accuracy but preserves what the paper's experiments
measure: *how many times data crosses the bus* and *who is occupied while
it does*.

Retry semantics follow the hardware: a snooper answering RETRY aborts the
tenure after the snoop window; the master backs off
``retry_backoff_cycles`` and re-arbitrates.  An S-COMA stalled read is
therefore a live sequence of short aborted tenures, consuming bus
bandwidth and keeping the aP pinned — the exact pathology §6 of the paper
warns about for approaches 4/5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.bus.ops import BusTransaction
from repro.bus.snoop import BusSlave, Snooper, SnoopResult
from repro.common.config import BusConfig
from repro.common.errors import AddressError, SimulationError
from repro.mem.address import AddressMap
from repro.sim.resource import PriorityResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer


class MemoryBus:
    """Arbitrated, snooped, address-mapped transaction transport."""

    def __init__(
        self,
        engine: "Engine",
        config: BusConfig,
        address_map: AddressMap,
        stats: Optional["StatsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        name: str = "bus",
    ) -> None:
        self.engine = engine
        self.config = config
        self.address_map = address_map
        self.name = name
        self.stats = stats
        self.tracer = tracer
        self._arbiter = PriorityResource(engine, capacity=1, name=f"{name}.arb")
        self._snoopers: List[Snooper] = []

    # -- construction ------------------------------------------------------

    def attach_snooper(self, snooper: Snooper) -> None:
        """Add a snooping agent; order of attachment is snoop order."""
        self._snoopers.append(snooper)

    # -- timing helpers ------------------------------------------------------

    def cycles(self, n: float) -> float:
        """Convert bus cycles to nanoseconds."""
        return n * self.config.cycle_ns

    def data_beats(self, txn: BusTransaction) -> int:
        """Data beats the transaction's data tenure occupies."""
        if not txn.op.has_data:
            return 0
        if txn.op.is_burst:
            return self.config.beats_per_line
        return 1

    # -- the transaction protocol ---------------------------------------------

    def transact(
        self, txn: BusTransaction, priority: int = 0
    ) -> Generator["Event", None, BusTransaction]:
        """Run one transaction to completion (process fragment).

        Returns the same transaction, with ``data`` filled in for reads.
        Raises :class:`AddressError` if nothing claims or maps the address,
        and :class:`SimulationError` when the configured retry cap trips
        (live-lock guard).
        """
        cfg = self.config
        if txn.op.is_burst:
            if txn.size != cfg.line_bytes:
                raise SimulationError(
                    f"burst {txn.op.value} must be {cfg.line_bytes} bytes, "
                    f"got {txn.size}"
                )
            if txn.addr % cfg.line_bytes:
                raise SimulationError(
                    f"burst {txn.op.value} misaligned at {txn.addr:#x}"
                )

        while True:
            # arbitration + address tenure + snoop window, bus held
            yield self._arbiter.request(priority)
            try:
                yield self.engine.timeout(
                    self.cycles(cfg.arbitration_cycles + cfg.address_cycles)
                )
                verdict, claimant = self._snoop_window(txn)
                yield self.engine.timeout(self.cycles(cfg.snoop_cycles))

                if verdict is SnoopResult.RETRY:
                    txn.retries += 1
                    if self.stats:
                        self.stats.counter(f"{self.name}.retries").incr()
                    if cfg.max_retries and txn.retries > cfg.max_retries:
                        raise SimulationError(
                            f"{txn!r} exceeded retry cap {cfg.max_retries}"
                        )
                else:
                    # data tenure while the bus is held
                    result = yield from self._data_tenure(txn, claimant)
                    if txn.op.is_read:
                        if result is None or len(result) != txn.size:
                            raise SimulationError(
                                f"{txn!r}: handler returned "
                                f"{len(result) if result is not None else None} "
                                f"bytes, expected {txn.size}"
                            )
                        txn.data = result
                    if self.stats:
                        self.stats.counter(f"{self.name}.txns").incr()
                        if txn.op.has_data:
                            self.stats.counter(f"{self.name}.bytes").incr(txn.size)
                    if self.tracer:
                        self.tracer.emit(
                            self.name,
                            f"bus.{txn.op.value}",
                            (txn.addr, txn.size, txn.master),
                        )
                    return txn
            finally:
                self._arbiter.release()
            # back off without holding the bus, then re-arbitrate
            yield self.engine.timeout(self.cycles(cfg.retry_backoff_cycles))

    def _snoop_window(self, txn: BusTransaction):
        """Collect snoop responses; returns (verdict, claimant)."""
        claimant: Optional[Snooper] = None
        retried = False
        for snooper in self._snoopers:
            res = snooper.snoop(txn)
            if res is SnoopResult.RETRY:
                retried = True
            elif res is SnoopResult.CLAIM:
                if claimant is not None:
                    raise SimulationError(
                        f"{txn!r} claimed by both {claimant.snooper_name!r} "
                        f"and {snooper.snooper_name!r}"
                    )
                claimant = snooper
        if retried:
            return SnoopResult.RETRY, None
        if claimant is not None:
            return SnoopResult.CLAIM, claimant
        return SnoopResult.OK, None

    def _data_tenure(
        self, txn: BusTransaction, claimant: Optional[Snooper]
    ) -> Generator["Event", None, Optional[bytes]]:
        if claimant is not None:
            txn.intervened = True
            return (yield from claimant.serve(txn))
        if not txn.op.has_data:
            # address-only operation (KILL/FLUSH): snoopers already acted.
            return None
        region = self.address_map.lookup(txn.addr, txn.size)
        owner = region.owner
        if owner is None:
            raise AddressError(
                f"{txn!r}: region {region.name!r} has no bus slave and no "
                "snooper claimed the transaction"
            )
        if not isinstance(owner, BusSlave):
            raise SimulationError(
                f"region {region.name!r} owner is not a BusSlave: {owner!r}"
            )
        return (yield from owner.access(txn))

    # -- diagnostics -----------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of simulated time the bus was held."""
        return self._arbiter.utilization()

    def busy_ns(self) -> float:
        """Total ns the bus was held."""
        return self._arbiter.busy_time()
