"""Express messages: one store to send, one load to receive.

"An express message consists of a five-byte payload.  The transmit and
receive queues are uncached so that a single uncached store can compose
and launch a message ... Part of the address of a transmit store encodes
the logical destination and a byte of data."

The five payload bytes are one byte riding in the store *address* plus
the four bytes on the data bus.  Receive returns ``None`` when the
hardware hands back the canonical empty message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Tuple

from repro.common.errors import ProgramError
from repro.mem.address import NIU_CTL_BASE
from repro.niu.handlers import (
    EXPRESS_BYTE_SHIFT,
    EXPRESS_VALID_FLAG,
    EXPRESS_VDST_SHIFT,
)
from repro.niu.niu import EXPRESS_RX_OFF, EXPRESS_TX_OFF

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard
    from repro.sim.events import Event


class ExpressPort:
    """User-level Express endpoint of one node."""

    def __init__(self, node: "NodeBoard") -> None:
        self.node = node
        self.stats = node.stats
        self._tx_base = NIU_CTL_BASE + EXPRESS_TX_OFF
        self._rx_addr = NIU_CTL_BASE + EXPRESS_RX_OFF
        self.sent = 0
        self.received = 0

    def send(self, api: "ApApi", vdst: int, payload: bytes
             ) -> Generator["Event", None, None]:
        """Send a five-byte Express message with a single uncached store.

        ``payload[0]`` travels in the address; ``payload[1:5]`` on the
        data bus.  Shorter payloads are zero-padded.
        """
        if len(payload) > 5:
            raise ProgramError(f"Express payload is 5 bytes, got {len(payload)}")
        if not (0 <= vdst <= 255):
            raise ProgramError(f"vdst {vdst} outside one byte")
        padded = payload.ljust(5, b"\x00")
        addr = (self._tx_base
                + (vdst << EXPRESS_VDST_SHIFT)
                + (padded[0] << EXPRESS_BYTE_SHIFT))
        t0 = api.now
        yield from api.store(addr, padded[1:5])
        self.sent += 1
        self.stats.accumulator("mp.express.send_ns").add(api.now - t0)

    def recv(self, api: "ApApi"
             ) -> Generator["Event", None, Optional[Tuple[int, bytes]]]:
        """One uncached load: ``(src, 5-byte payload)`` or ``None``."""
        raw = yield from api.load(self._rx_addr, 8)
        if not (raw[0] & EXPRESS_VALID_FLAG):
            return None
        self.received += 1
        return raw[1], raw[2:7]

    def recv_blocking(self, api: "ApApi", poll_insns: int = 25
                      ) -> Generator["Event", None, Tuple[int, bytes]]:
        """Spin on :meth:`recv` until a message arrives.

        ``poll_insns`` is the per-iteration loop overhead (see
        :meth:`repro.mp.basic.BasicPort.recv`).
        """
        t0 = api.now
        while True:
            msg = yield from self.recv(api)
            if msg is not None:
                self.stats.accumulator("mp.express.recv_ns").add(api.now - t0)
                return msg
            yield from api.compute(poll_insns)
