"""Basic messages: the user-level view of a CTRL queue pair.

"A basic message has a variable length data section of up to 88 bytes
... Application code manipulates pointers to transmit and receive
buffers.  The implementation merely exports the underlying message
passing primitive to the user."

A :class:`BasicPort` owns one hardware transmit queue and one logical
receive queue of a node.  Its methods are generator fragments run *on
the aP* (``yield from port.send(api, ...)``), so every SRAM write,
pointer update and poll is a real bus operation with real cost:

* send: compose header+payload into the aSRAM window (line bursts),
  then one uncached store advances the producer pointer;
* receive: poll the producer shadow with uncached loads, read the entry
  from the aSRAM window, retire it with one consumer-pointer store.

TagOn attachments ride the same port: stage the attachment into user
aSRAM once with :meth:`stage_tagon`, then name it in any number of
sends — "a pointer in the message description specifies the data in
SRAM".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Tuple

from repro.common.errors import ProgramError, ProtectionViolation
from repro.mem.address import ASRAM_BASE, NIU_CTL_BASE
from repro.niu.handlers import pointer_offset
from repro.niu.msgformat import (
    FLAG_TAGON,
    HEADER_BYTES,
    MAX_PAYLOAD,
    TAGON_LARGE_UNITS,
    TAGON_SMALL_UNITS,
    TAGON_UNIT_BYTES,
    MsgHeader,
    decode_rx_header,
    encode_header,
)
from repro.niu.niu import PTR_WINDOW_OFF, SP_REL_TX_QUEUE, vdst_for
from repro.niu.queues import BANK_A, QueueKind, QueueState

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard
    from repro.sim.events import Event


class BasicPort:
    """User-level endpoint over one tx queue + one logical rx queue."""

    def __init__(self, node: "NodeBoard", tx_index: int,
                 rx_logical: int) -> None:
        niu = node.niu
        self.node = node
        self.stats = node.stats
        self.tx: QueueState = niu.ctrl.tx_queues[tx_index]
        if self.tx.bank != BANK_A:
            raise ProgramError("BasicPort needs an aSRAM-backed tx queue")
        self.rx: QueueState = niu.ap_rx_slot(rx_logical)
        self.rx_logical = rx_logical
        # user-space pointer mirrors (re-read from hardware only on demand)
        self._tx_producer = self.tx.producer
        self._tx_known_consumer = self.tx.consumer
        self._rx_consumer = self.rx.consumer
        self._ptr_base = NIU_CTL_BASE + PTR_WINDOW_OFF
        self.sent = 0
        self.received = 0

    # -- address helpers -------------------------------------------------------

    def _tx_slot_addr(self, n: int) -> int:
        return ASRAM_BASE + self.tx.slot_offset(n)

    def _rx_slot_addr(self, n: int) -> int:
        return ASRAM_BASE + self.rx.slot_offset(n)

    def _ptr_addr(self, kind: QueueKind, index: int, which: str) -> int:
        return self._ptr_base + pointer_offset(kind, index, which)

    # -- transmit ------------------------------------------------------------------

    def send(
        self,
        api: "ApApi",
        vdst: int,
        payload: bytes,
        tagon: Optional[Tuple[int, int]] = None,
        raw: bool = False,
        dst_queue: int = 0,
    ) -> Generator["Event", None, None]:
        """Compose and launch one message (blocks while the queue is full).

        ``tagon`` is ``(asram_offset, units)`` from :meth:`stage_tagon`.
        With ``raw=True``, ``vdst`` is the *physical* destination node
        and ``dst_queue`` the destination logical queue — kernel-mode
        addressing that bypasses translation (the tx queue must be
        ``allow_raw``; machines beyond 16 nodes are assembled this way).
        """
        if len(payload) > MAX_PAYLOAD:
            raise ProgramError(f"payload {len(payload)} exceeds {MAX_PAYLOAD}")
        flags = 0x01 if raw else 0
        hdr = MsgHeader(flags=flags, vdst=vdst, length=len(payload),
                        dst_queue=dst_queue if raw else 0)
        if tagon is not None:
            offset, units = tagon
            if units not in (TAGON_SMALL_UNITS, TAGON_LARGE_UNITS):
                raise ProgramError(f"bad TagOn units {units}")
            hdr.flags |= FLAG_TAGON
            hdr.tagon_bank = BANK_A
            hdr.tagon_offset = offset
            hdr.tagon_units = units
        hdr.validate()
        t0 = api.now
        # wait for a free slot: re-read the consumer shadow while full
        while self._tx_producer - self._tx_known_consumer >= self.tx.depth:
            if not self.tx.enabled:
                raise ProtectionViolation(
                    f"tx queue {self.tx.index} was shut down"
                )
            self._tx_known_consumer = yield from api.load_u32(
                self._ptr_addr(QueueKind.TX, self.tx.index, "consumer")
            )
            if self._tx_producer - self._tx_known_consumer >= self.tx.depth:
                yield from api.compute(25)  # polling loop overhead
        slot = self._tx_slot_addr(self._tx_producer)
        yield from api.store(slot, encode_header(hdr) + payload)
        self._tx_producer += 1
        yield from api.store_u32(
            self._ptr_addr(QueueKind.TX, self.tx.index, "producer"),
            self._tx_producer,
        )
        self.sent += 1
        self.stats.accumulator("mp.basic.send_ns").add(api.now - t0)

    def send_reliable(
        self,
        api: "ApApi",
        dst_node: int,
        payload: bytes,
        dst_queue: int = 0,
        raw: bool = False,
    ) -> Generator["Event", None, None]:
        """Launch one message with firmware ack/retransmit delivery.

        The payload is handed to the *local* sP's go-back-N sender
        (:mod:`repro.firmware.reliable`), which sequences it, keeps a
        copy for retransmission, and releases it only on a cumulative
        ACK from ``dst_node``.  Blocks (via the ordinary tx-full poll)
        when the sP's retransmit window is saturated.  ``raw`` selects
        kernel-mode addressing exactly as in :meth:`send`; here it
        applies to the hop into the local sP, while ``dst_node`` always
        travels in the request header.
        """
        from repro.firmware.proto import pack_rel_send
        from repro.firmware.reliable import REL_MAX_PAYLOAD

        if len(payload) > REL_MAX_PAYLOAD:
            raise ProgramError(
                f"reliable payload {len(payload)} exceeds {REL_MAX_PAYLOAD} "
                f"(the go-back-N header claims {MAX_PAYLOAD - REL_MAX_PAYLOAD}"
                f" bytes)"
            )
        req = pack_rel_send(dst_queue, dst_node) + payload
        me = self.node.node_id
        if raw:
            yield from self.send(api, me, req, raw=True,
                                 dst_queue=SP_REL_TX_QUEUE)
        else:
            yield from self.send(api, vdst_for(me, SP_REL_TX_QUEUE), req)

    def stage_tagon(self, api: "ApApi", niu_offset: int, data: bytes
                    ) -> Generator["Event", None, Tuple[int, int]]:
        """Write TagOn data into user aSRAM; returns the (offset, units).

        ``niu_offset`` comes from ``node.niu.alloc_asram(...)``; data is
        padded to the next legal TagOn size (48 or 80 bytes).
        """
        if len(data) <= TAGON_SMALL_UNITS * TAGON_UNIT_BYTES:
            units = TAGON_SMALL_UNITS
        elif len(data) <= TAGON_LARGE_UNITS * TAGON_UNIT_BYTES:
            units = TAGON_LARGE_UNITS
        else:
            raise ProgramError(f"TagOn data of {len(data)} bytes is too large")
        padded = data.ljust(units * TAGON_UNIT_BYTES, b"\x00")
        yield from api.store(ASRAM_BASE + niu_offset, padded)
        return niu_offset, units

    # -- receive ------------------------------------------------------------------

    def poll(self, api: "ApApi"
             ) -> Generator["Event", None, Optional[Tuple[int, bytes]]]:
        """Non-blocking receive: one producer-shadow poll, then the entry."""
        producer = yield from api.load_u32(
            self._ptr_addr(QueueKind.RX, self.rx.index, "producer")
        )
        if producer == self._rx_consumer:
            return None
        return (yield from self._take(api))

    def recv(self, api: "ApApi", poll_insns: int = 25
             ) -> Generator["Event", None, Tuple[int, bytes]]:
        """Blocking receive: spin on the producer shadow until a message.

        ``poll_insns`` models the polling loop's instruction overhead per
        iteration; without it the uncached pointer loads would hammer the
        memory bus far harder than a real 604 polling loop can.
        """
        t0 = api.now
        while True:
            producer = yield from api.load_u32(
                self._ptr_addr(QueueKind.RX, self.rx.index, "producer")
            )
            if producer != self._rx_consumer:
                break
            yield from api.compute(poll_insns)
        msg = yield from self._take(api)
        self.stats.accumulator("mp.basic.recv_ns").add(api.now - t0)
        return msg

    def _take(self, api: "ApApi"
              ) -> Generator["Event", None, Tuple[int, bytes]]:
        slot = self._rx_slot_addr(self._rx_consumer)
        raw = yield from api.load(slot, HEADER_BYTES)
        src, length, _flags = decode_rx_header(raw)
        payload = b""
        if length:
            payload = yield from api.load(slot + HEADER_BYTES, length)
        self._rx_consumer += 1
        yield from api.store_u32(
            self._ptr_addr(QueueKind.RX, self.rx.index, "consumer"),
            self._rx_consumer,
        )
        self.received += 1
        return src, payload
