"""Reader side of DRAM-resident (non-hardware-cached) receive queues.

The firmware miss-queue service (:mod:`repro.firmware.msg`) appends
messages bound for non-resident logical queues into DRAM rings; this is
the aP-side reader.  Polling the producer counter is an ordinary cached
load — cheap while nothing arrives, automatically invalidated by the
NIU's write when something does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Tuple

from repro.firmware.msg import DramRing
from repro.niu.msgformat import HEADER_BYTES, decode_rx_header

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.sim.events import Event


class DramQueueReader:
    """aP-side consumer of one firmware-managed DRAM ring."""

    def __init__(self, ring: DramRing) -> None:
        self.ring = ring
        self._consumer = 0
        self.received = 0

    def poll(self, api: "ApApi"
             ) -> Generator["Event", None, Optional[Tuple[int, bytes]]]:
        """Non-blocking receive from the ring."""
        producer = yield from api.load_u32(self.ring.base)
        if producer == self._consumer:
            return None
        addr = self.ring.entry_addr(self._consumer)
        raw = yield from api.load(addr, HEADER_BYTES)
        src, length, _flags = decode_rx_header(raw)
        payload = b""
        if length:
            payload = yield from api.load(addr + HEADER_BYTES, length)
        self._consumer += 1
        yield from api.store_u32(self.ring.base + 4, self._consumer)
        self.received += 1
        return src, payload

    def recv(self, api: "ApApi", poll_insns: int = 25
             ) -> Generator["Event", None, Tuple[int, bytes]]:
        """Blocking receive (spins on the producer counter — cached, so
        idle polling stays off the bus until the NIU's write invalidates
        the line)."""
        while True:
            msg = yield from self.poll(api)
            if msg is not None:
                return msg
            yield from api.compute(poll_insns)
