"""User-level DMA: arbitrarily large region copies across nodes.

"An arbitrarily large region of memory can be copied from a local DRAM
to a remote DRAM across the network.  It is implemented by firmware
making use of the primitive block operations."

:func:`dma_write` sends the request message to the local sP's service
queue and (optionally) waits for the completion notification that the
last block-transmit packet delivers into the requester-chosen receive
queue at the *destination*; :class:`DmaNotifier` is the destination-side
helper that waits for it (the am_store pattern of §6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Tuple

from repro.common.errors import ProgramError
from repro.firmware.proto import pack_dma_req
from repro.mp.basic import BasicPort
from repro.niu.niu import NOTIFY_QUEUE, SP_SERVICE_QUEUE, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard
    from repro.sim.events import Event


def dma_write(
    api: "ApApi",
    port: BasicPort,
    dst_node: int,
    src_addr: int,
    dst_addr: int,
    length: int,
    notify_queue: int = NOTIFY_QUEUE,
    mode: int = 3,
) -> Generator["Event", None, None]:
    """Request a DMA of ``length`` bytes to ``dst_node`` and return.

    The transfer proceeds in the background (block units + network); the
    destination learns of completion through ``notify_queue``.  ``mode``
    selects the §6 variant (3 = hardware DMA, 4/5 = optimistic S-COMA
    notification).
    """
    if length <= 0:
        raise ProgramError(f"DMA length must be positive, got {length}")
    request = pack_dma_req(src_addr, dst_node, dst_addr, length,
                           notify_queue, mode)
    t0 = api.now
    yield from port.send(api, vdst_for(api.node_id, SP_SERVICE_QUEUE), request)
    port.stats.accumulator("mp.dma.request_ns").add(api.now - t0)


class DmaNotifier:
    """Destination-side receiver of DMA completion notifications."""

    def __init__(self, node: "NodeBoard", logical: int = NOTIFY_QUEUE) -> None:
        # any aP tx queue works; the notifier only receives
        self.port = BasicPort(node, tx_index=0, rx_logical=logical)

    def wait(self, api: "ApApi"
             ) -> Generator["Event", None, Tuple[int, int]]:
        """Block until a notification arrives; returns (src_node, length)."""
        t0 = api.now
        src, payload = yield from self.port.recv(api)
        self.port.stats.accumulator("mp.dma.notify_wait_ns").add(api.now - t0)
        length = int.from_bytes(payload[:4], "big") if len(payload) >= 4 else 0
        return src, length

    def poll(self, api: "ApApi"
             ) -> Generator["Event", None, Optional[Tuple[int, int]]]:
        """Non-blocking notification check."""
        msg = yield from self.port.poll(api)
        if msg is None:
            return None
        src, payload = msg
        length = int.from_bytes(payload[:4], "big") if len(payload) >= 4 else 0
        return src, length
