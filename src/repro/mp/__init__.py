"""Message-passing mechanisms (the user-level library, layer 0).

Four mechanisms, exactly the paper's §5 set: :class:`BasicPort` (Basic
and TagOn messages), :class:`ExpressPort`, and the DMA helpers
(:func:`dma_write`, :class:`DmaNotifier`); plus the reader for
DRAM-resident overflow queues.  The NIU addressing helpers a sender
needs to name a destination (:func:`vdst_for`, the Express receive
queue constant) are re-exported here so user code never imports
``repro.niu`` directly.
"""

from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.mp.dramq import DramQueueReader
from repro.mp.express import ExpressPort
from repro.niu.niu import EXPRESS_RX_LOGICAL, vdst_for

__all__ = [
    "BasicPort",
    "ExpressPort",
    "DmaNotifier",
    "dma_write",
    "DramQueueReader",
    "vdst_for",
    "EXPRESS_RX_LOGICAL",
]
