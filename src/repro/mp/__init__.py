"""Message-passing mechanisms (the user-level library, layer 0).

Four mechanisms, exactly the paper's §5 set: :class:`BasicPort` (Basic
and TagOn messages), :class:`ExpressPort`, and the DMA helpers
(:func:`dma_write`, :class:`DmaNotifier`); plus the reader for
DRAM-resident overflow queues.
"""

from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.mp.dramq import DramQueueReader
from repro.mp.express import ExpressPort

__all__ = [
    "BasicPort",
    "ExpressPort",
    "DmaNotifier",
    "dma_write",
    "DramQueueReader",
]
