"""NIC-offloaded collective communication (the layer-1 extension story).

StarT-Voyager's thesis is that a programmable NIU lets new communication
mechanisms be added without touching the aP or the core hardware.  This
package exercises that claim end to end: collective operations (barrier,
broadcast, reduce, allreduce, gather) move off the host into sP firmware
that combines contributions as they arrive and forwards one message per
tree edge — the aP issues a single enqueue and a single dequeue per
collective instead of O(N) point-to-point messages.

Three layers, lowest first:

* :mod:`repro.collectives.plan` — pure-data spanning trees (k-ary,
  binomial) and recursive-doubling schedules; unit-testable without the
  simulator;
* :mod:`repro.collectives.wire` — the collective message formats carried
  over Basic messages to/between service processors;
* :mod:`repro.collectives.firmware` — the ``CollectiveUnit`` sP firmware
  (combining state, arrival counters, tree forwarding);
* :mod:`repro.collectives.api` — host-side tree algorithms over mini-MPI
  point-to-point (the ``algo="tree"`` middle ground).

:class:`repro.lib.mpi.MiniMPI` selects between them with its ``algo=``
switch (``"flat"`` / ``"tree"`` / ``"nic"``).
"""

from repro.collectives.plan import (
    OPS,
    RdSchedule,
    TreePlan,
    binomial_tree,
    kary_tree,
    op_by_code,
    op_by_name,
    recursive_doubling,
)
from repro.collectives.firmware import setup_collectives, ensure_collectives

__all__ = [
    "TreePlan",
    "RdSchedule",
    "kary_tree",
    "binomial_tree",
    "recursive_doubling",
    "OPS",
    "op_by_name",
    "op_by_code",
    "setup_collectives",
    "ensure_collectives",
]
