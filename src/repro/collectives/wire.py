"""Collective message wire format (one layout for REQ/UP/DOWN).

Every collective message fits one Basic payload and shares one layout so
the firmware decodes a single shape:

====== ==========================================
bytes  field
====== ==========================================
0      message type (MSG_COLL_REQ / _UP / _DOWN)
1      collective kind (barrier/bcast/reduce/allreduce)
2      reduction op code (:data:`repro.collectives.plan.OPS`)
3      communicator id
4-7    collective sequence number (u32 — the firmware combining state is
       keyed by (comm, seq), so host-side 15-bit tag wraps never alias
       in-flight firmware state)
8      root rank
9      reply logical rx queue (where results are delivered to the aP)
10-11  delivery tag (the mini-MPI fragment tag the aP is waiting on)
12     data length
13+    data (8-byte signed value for reduce/allreduce, broadcast payload,
       or empty for barrier)
====== ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import FirmwareError, ProgramError
from repro.firmware.proto import MSG_COLL_DOWN, MSG_COLL_REQ, MSG_COLL_UP
from repro.niu.msgformat import MAX_PAYLOAD

COLL_HEADER = 13
#: the largest data section a collective message can carry; also bounded
#: by the delivery fragment (10-byte mini-MPI header + data <= 88).
COLL_MAX_DATA = min(MAX_PAYLOAD - COLL_HEADER, 78)

KIND_BARRIER = 0
KIND_BCAST = 1
KIND_REDUCE = 2
KIND_ALLREDUCE = 3

KIND_NAMES = {
    KIND_BARRIER: "barrier",
    KIND_BCAST: "bcast",
    KIND_REDUCE: "reduce",
    KIND_ALLREDUCE: "allreduce",
}

_COLL_TYPES = (MSG_COLL_REQ, MSG_COLL_UP, MSG_COLL_DOWN)


@dataclass(frozen=True)
class CollMsg:
    """One decoded collective message."""

    type: int
    kind: int
    op: int
    comm: int
    seq: int
    root: int
    reply_queue: int
    tag: int
    data: bytes

    @property
    def key(self):
        """The firmware combining-state key."""
        return (self.comm, self.seq)


def pack_coll(type_: int, kind: int, op: int, comm: int, seq: int,
              root: int, reply_queue: int, tag: int, data: bytes = b""
              ) -> bytes:
    """Pack one collective message (validates every field range)."""
    if type_ not in _COLL_TYPES:
        raise ProgramError(f"not a collective message type: {type_}")
    if kind not in KIND_NAMES:
        raise ProgramError(f"unknown collective kind {kind}")
    if len(data) > COLL_MAX_DATA:
        raise ProgramError(
            f"collective data of {len(data)} bytes exceeds the "
            f"{COLL_MAX_DATA}-byte single-message cap"
        )
    if not (0 <= seq < 1 << 32):
        raise ProgramError(f"sequence {seq} outside 32 bits")
    if not (0 <= tag <= 0xFFFF):
        raise ProgramError(f"tag {tag} outside 16 bits")
    return (bytes([type_, kind, op & 0xFF, comm & 0xFF])
            + seq.to_bytes(4, "big")
            + bytes([root & 0xFF, reply_queue & 0xFF])
            + tag.to_bytes(2, "big")
            + bytes([len(data)])
            + data)


def unpack_coll(payload: bytes) -> CollMsg:
    """Decode one collective message (firmware side)."""
    if len(payload) < COLL_HEADER or payload[0] not in _COLL_TYPES:
        raise FirmwareError(f"not a collective message: {payload!r}")
    length = payload[12]
    if len(payload) < COLL_HEADER + length:
        raise FirmwareError(f"truncated collective message: {payload!r}")
    return CollMsg(
        type=payload[0],
        kind=payload[1],
        op=payload[2],
        comm=payload[3],
        seq=int.from_bytes(payload[4:8], "big"),
        root=payload[8],
        reply_queue=payload[9],
        tag=int.from_bytes(payload[10:12], "big"),
        data=payload[COLL_HEADER : COLL_HEADER + length],
    )


def pack_value(value: int) -> bytes:
    """An integer contribution as its 8-byte signed wire form."""
    return value.to_bytes(8, "big", signed=True)


def unpack_value(data: bytes) -> int:
    """Decode an 8-byte signed contribution."""
    if len(data) != 8:
        raise FirmwareError(f"reduction value must be 8 bytes, got {len(data)}")
    return int.from_bytes(data, "big", signed=True)
