"""Topology plans for collectives: spanning trees and exchange schedules.

Plans are *pure data* — tuples of parent links, child lists, and
exchange rounds — so the algorithms can be unit-tested exhaustively
without building a machine.  Both tree shapes handle arbitrary (not just
power-of-two) node counts, and non-zero roots are expressed by rotating
"virtual ranks": virtual rank ``v = (r - root) mod n`` so the root is
always virtual 0.

The binomial tree has the property the reduction algorithms rely on for
non-commutative operators: the subtree of virtual rank ``v`` spans the
contiguous virtual range ``[v, v + lowbit(v))``, so folding own-value-
first then children in ascending order reproduces the exact
ascending-rank fold (MPI's canonical reduction order), rotated by
``root`` when ``root != 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ProgramError

# ----------------------------------------------------------------------
# reduction operators
# ----------------------------------------------------------------------

#: named reduction operators usable on every algorithm path.  The
#: NIC-offloaded path is restricted to these (firmware combines
#: contributions in arrival order, which is only safe for commutative +
#: associative operators); the host paths additionally accept arbitrary
#: callables.
OPS: Dict[str, Tuple[int, Callable[[int, int], int]]] = {
    "sum": (0, lambda a, b: a + b),
    "prod": (1, lambda a, b: a * b),
    "min": (2, min),
    "max": (3, max),
    "band": (4, lambda a, b: a & b),
    "bor": (5, lambda a, b: a | b),
    "bxor": (6, lambda a, b: a ^ b),
}

_BY_CODE = {code: (name, fn) for name, (code, fn) in OPS.items()}


def op_by_name(name: str) -> Tuple[int, Callable[[int, int], int]]:
    """``(code, fn)`` of a named operator (raises on unknown names)."""
    try:
        return OPS[name]
    except KeyError:
        raise ProgramError(
            f"unknown reduction op {name!r}; known: {sorted(OPS)}"
        )


def op_by_code(code: int) -> Callable[[int, int], int]:
    """The combining function of an operator code (firmware side)."""
    try:
        return _BY_CODE[code][1]
    except KeyError:
        raise ProgramError(f"unknown reduction op code {code}")


# ----------------------------------------------------------------------
# spanning trees
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TreePlan:
    """One rooted spanning tree over ranks ``0..n-1`` (pure data).

    ``parent[r]`` is ``None`` only at the root; ``children[r]`` lists a
    rank's children in the tree's deterministic fold order (ascending
    virtual rank).
    """

    n: int
    root: int
    kind: str
    parent: Tuple[Optional[int], ...]
    children: Tuple[Tuple[int, ...], ...]

    def depth(self) -> int:
        """Longest root-to-leaf path in edges (0 for a single node)."""
        best = 0
        for r in range(self.n):
            d, node = 0, r
            while self.parent[node] is not None:
                node = self.parent[node]  # type: ignore[assignment]
                d += 1
            best = max(best, d)
        return best

    def validate(self) -> None:
        """Check the plan is a spanning tree rooted at ``root``."""
        if not (0 <= self.root < self.n):
            raise ProgramError(f"root {self.root} outside 0..{self.n - 1}")
        if self.parent[self.root] is not None:
            raise ProgramError("root must have no parent")
        seen = 0
        for r in range(self.n):
            node, hops = r, 0
            while self.parent[node] is not None:
                node = self.parent[node]  # type: ignore[assignment]
                hops += 1
                if hops > self.n:
                    raise ProgramError(f"cycle reached from rank {r}")
            if node != self.root:
                raise ProgramError(f"rank {r} does not reach the root")
            seen += 1
        for r in range(self.n):
            for c in self.children[r]:
                if self.parent[c] != r:
                    raise ProgramError(f"child link {r}->{c} has no parent link")
        if sum(len(c) for c in self.children) != self.n - 1:
            raise ProgramError("tree must have exactly n-1 edges")


def _rotate(
    n: int, root: int, virtual_parent: List[Optional[int]]
) -> Tuple[List[Optional[int]], List[List[int]]]:
    """Map a virtual-rank tree (rooted at virtual 0) back to real ranks."""
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        r = (v + root) % n
        pv = virtual_parent[v]
        if pv is None:
            continue
        p = (pv + root) % n
        parent[r] = p
        children[p].append(r)
    # fold order: ascending *virtual* rank, which is the append order
    return parent, children


def kary_tree(n: int, root: int = 0, k: int = 2) -> TreePlan:
    """Heap-shaped k-ary spanning tree (children of v: ``k*v+1..k*v+k``)."""
    if n < 1:
        raise ProgramError(f"tree needs at least one rank, got {n}")
    if k < 1:
        raise ProgramError(f"arity must be at least 1, got {k}")
    if not (0 <= root < n):
        raise ProgramError(f"root {root} outside 0..{n - 1}")
    virtual_parent: List[Optional[int]] = [
        None if v == 0 else (v - 1) // k for v in range(n)
    ]
    parent, children = _rotate(n, root, virtual_parent)
    plan = TreePlan(n, root, f"kary{k}", tuple(parent),
                    tuple(tuple(c) for c in children))
    plan.validate()
    return plan


def binomial_tree(n: int, root: int = 0) -> TreePlan:
    """Binomial spanning tree: parent of virtual ``v`` is ``v & (v - 1)``.

    The subtree of virtual rank ``v`` spans the contiguous range
    ``[v, v + lowbit(v))``, which makes own-then-ascending-children folds
    equal to the ascending-virtual-rank fold — the property the reduce
    algorithms need for non-commutative operators.
    """
    if n < 1:
        raise ProgramError(f"tree needs at least one rank, got {n}")
    if not (0 <= root < n):
        raise ProgramError(f"root {root} outside 0..{n - 1}")
    virtual_parent: List[Optional[int]] = [
        None if v == 0 else v & (v - 1) for v in range(n)
    ]
    parent, children = _rotate(n, root, virtual_parent)
    plan = TreePlan(n, root, "binomial", tuple(parent),
                    tuple(tuple(c) for c in children))
    plan.validate()
    return plan


# ----------------------------------------------------------------------
# recursive doubling (allreduce)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RdSchedule:
    """Recursive-doubling allreduce schedule for ``n`` ranks (pure data).

    ``pow2`` is the largest power of two ``<= n``.  Ranks ``>= pow2``
    ("extras") fold their value into partner ``r - pow2`` up front and
    receive the final result at the end; the remaining ``pow2`` ranks
    run ``log2(pow2)`` pairwise-exchange rounds, partner ``r ^ d``.
    """

    n: int
    pow2: int
    #: per-round exchange distance: 1, 2, 4, ... pow2/2.
    rounds: Tuple[int, ...]

    def is_extra(self, rank: int) -> bool:
        """True for ranks folded in before the exchange rounds."""
        return rank >= self.pow2

    def extra_partner(self, rank: int) -> Optional[int]:
        """The extra rank served by ``rank`` (or ``None``)."""
        if rank < self.pow2 and rank + self.pow2 < self.n:
            return rank + self.pow2
        return None

    def partners(self, rank: int) -> Tuple[int, ...]:
        """Exchange partners of a non-extra rank, round by round."""
        if self.is_extra(rank):
            return ()
        return tuple(rank ^ d for d in self.rounds)


def recursive_doubling(n: int) -> RdSchedule:
    """Build the recursive-doubling schedule for ``n`` ranks."""
    if n < 1:
        raise ProgramError(f"schedule needs at least one rank, got {n}")
    pow2 = 1
    while pow2 * 2 <= n:
        pow2 *= 2
    rounds: List[int] = []
    d = 1
    while d < pow2:
        rounds.append(d)
        d *= 2
    return RdSchedule(n, pow2, tuple(rounds))
