"""Host-side tree collectives over mini-MPI point-to-point.

The ``algo="tree"`` middle ground: same O(log N) communication structure
as the NIC-offloaded path, but executed by the aPs with ordinary
point-to-point sends/receives — no firmware involvement beyond normal
message delivery.  Useful both as a benchmark rung between ``"flat"``
and ``"nic"`` and as the fallback for operations the combining firmware
does not accelerate (variable-size ``gather``, arbitrary callable
reduction operators).

Every function is a generator fragment run on the aP; ``comm`` is a
:class:`repro.lib.mpi.MpiRank` (or anything offering ``rank``/``size``/
``_send``/``recv`` — the raw send path, because collective tags live in
the reserved upper half of the tag space).  Reductions fold
own-value-first, then children in
the plan's deterministic order — on a binomial tree this is exactly the
ascending-(virtual-)rank fold, so non-commutative operators behave like
MPI's canonical reduction order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List, Optional

from repro.collectives.plan import RdSchedule, TreePlan
from repro.common.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.sim.events import Event


def _record(comm, api: "ApApi", name: str, t0: float) -> None:
    """Latency sample for one collective call (no-op for bare comms)."""
    stats = getattr(comm, "stats", None)
    if stats is not None:
        stats.accumulator(name).add(api.now - t0)


def _pack(value: int) -> bytes:
    return value.to_bytes(8, "big", signed=True)


def _unpack(data: bytes) -> int:
    return int.from_bytes(data, "big", signed=True)


def tree_barrier(comm, api: "ApApi", plan: TreePlan, tag: int
                 ) -> Generator["Event", None, None]:
    """Gather-up then release-down along the tree: O(depth) critical path."""
    t0 = api.now
    me = comm.rank
    for child in plan.children[me]:
        yield from comm.recv(api, src=child, tag=tag)
    if me != plan.root:
        yield from comm._send(api, plan.parent[me], b"u", tag)
        yield from comm.recv(api, src=plan.parent[me], tag=tag)
    for child in plan.children[me]:
        yield from comm._send(api, child, b"d", tag)
    _record(comm, api, "coll.tree_barrier_ns", t0)


def tree_bcast(comm, api: "ApApi", data: Optional[bytes], plan: TreePlan,
               tag: int) -> Generator["Event", None, bytes]:
    """Pipeline ``data`` down the tree from ``plan.root``."""
    t0 = api.now
    me = comm.rank
    if me == plan.root:
        assert data is not None, "root must supply the data"
    else:
        _src, _tag, data = yield from comm.recv(api, src=plan.parent[me],
                                                tag=tag)
    for child in plan.children[me]:
        yield from comm._send(api, child, data, tag)
    _record(comm, api, "coll.tree_bcast_ns", t0)
    return data


def tree_reduce(comm, api: "ApApi", value: int,
                op: Callable[[int, int], int], plan: TreePlan, tag: int
                ) -> Generator["Event", None, Optional[int]]:
    """Combine up the tree; the result materializes only at the root.

    Children are awaited in the plan's fold order (not arrival order),
    so the fold is deterministic and — on a binomial tree — equals the
    ascending-rank fold even for non-commutative ``op``.
    """
    t0 = api.now
    me = comm.rank
    acc = value
    for child in plan.children[me]:
        _src, _tag, data = yield from comm.recv(api, src=child, tag=tag)
        acc = op(acc, _unpack(data))
    if me == plan.root:
        _record(comm, api, "coll.tree_reduce_ns", t0)
        return acc
    yield from comm._send(api, plan.parent[me], _pack(acc), tag)
    _record(comm, api, "coll.tree_reduce_ns", t0)
    return None


def rd_allreduce(comm, api: "ApApi", value: int,
                 op: Callable[[int, int], int], sched: RdSchedule, tag: int
                 ) -> Generator["Event", None, int]:
    """Recursive-doubling allreduce: O(log N) rounds, every rank busy.

    Non-power-of-two sizes fold the extra ranks in before the exchange
    rounds and hand them the result afterwards.  The lower-rank operand
    always goes on the left, so associative non-commutative operators
    still fold in a deterministic (if not strictly ascending) order.
    """
    t0 = api.now
    me = comm.rank
    if sched.is_extra(me):
        partner = me - sched.pow2
        yield from comm._send(api, partner, _pack(value), tag)
        _src, _tag, data = yield from comm.recv(api, src=partner, tag=tag)
        _record(comm, api, "coll.rd_allreduce_ns", t0)
        return _unpack(data)
    acc = value
    extra = sched.extra_partner(me)
    if extra is not None:
        _src, _tag, data = yield from comm.recv(api, src=extra, tag=tag)
        acc = op(acc, _unpack(data))
    for peer in sched.partners(me):
        yield from comm._send(api, peer, _pack(acc), tag)
        _src, _tag, data = yield from comm.recv(api, src=peer, tag=tag)
        theirs = _unpack(data)
        acc = op(acc, theirs) if peer > me else op(theirs, acc)
    if extra is not None:
        yield from comm._send(api, extra, _pack(acc), tag)
    _record(comm, api, "coll.rd_allreduce_ns", t0)
    return acc


def tree_gather(comm, api: "ApApi", data: bytes, plan: TreePlan, tag: int
                ) -> Generator["Event", None, Optional[List[bytes]]]:
    """Gather rank-labeled byte strings up the tree to ``plan.root``.

    Each rank forwards one packed blob (its own item plus every child
    subtree's items) per tree edge; fragmentation in the point-to-point
    layer handles arbitrary sizes.
    """
    t0 = api.now
    me = comm.rank
    blob = _pack_item(me, data)
    for child in plan.children[me]:
        _src, _tag, sub = yield from comm.recv(api, src=child, tag=tag)
        blob += sub
    if me != plan.root:
        yield from comm._send(api, plan.parent[me], blob, tag)
        _record(comm, api, "coll.tree_gather_ns", t0)
        return None
    parts: List[Optional[bytes]] = [None] * comm.size
    for rank, item in _unpack_items(blob):
        parts[rank] = item
    if any(p is None for p in parts):
        raise ProgramError("gather blob did not cover every rank")
    _record(comm, api, "coll.tree_gather_ns", t0)
    return parts  # type: ignore[return-value]


def _pack_item(rank: int, data: bytes) -> bytes:
    return rank.to_bytes(2, "big") + len(data).to_bytes(4, "big") + data


def _unpack_items(blob: bytes):
    off = 0
    while off < len(blob):
        rank = int.from_bytes(blob[off : off + 2], "big")
        length = int.from_bytes(blob[off + 2 : off + 6], "big")
        yield rank, blob[off + 6 : off + 6 + length]
        off += 6 + length
