"""The ``CollectiveUnit``: sP firmware that runs collectives in the NIU.

"Library functions may also run on the sP" — this module is the paper's
extensibility claim exercised end to end: collectives move off the aP
into firmware without touching the core hardware.  Each node's sP holds
per-``(communicator, sequence)`` combining state along a spanning tree
(:class:`~repro.collectives.plan.TreePlan`):

* the aP contributes with **one** Basic enqueue to the local sP service
  queue (``MSG_COLL_REQ``);
* the sP combines its aP's contribution with its children's subtree
  contributions *as they arrive* and forwards a single combined
  ``MSG_COLL_UP`` message to its tree parent — one message per tree edge
  instead of N-1 messages through one root;
* the root sP turns the fully combined value around as ``MSG_COLL_DOWN``
  messages that fan back out over the tree, and every sP delivers the
  result into its local aP's receive queue, formatted as a mini-MPI
  fragment so the aP's ordinary tag-matched dequeue completes the
  collective.

Combining happens in arrival order, so the offloaded reduction path is
restricted to the commutative + associative named operators in
:data:`repro.collectives.plan.OPS`; host-side algorithms handle
arbitrary callables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.collectives import wire
from repro.collectives.plan import TreePlan, binomial_tree, op_by_code
from repro.common.errors import FirmwareError
from repro.firmware.base import fw_send, register_msg_handler
from repro.firmware.proto import MSG_COLL_DOWN, MSG_COLL_REQ, MSG_COLL_UP
from repro.niu.niu import (SP_SERVICE_QUEUE, SP_TX_GENERAL,
                           needs_raw_addressing, vdst_for)

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event


class _Pending:
    """Combining state of one in-flight collective at one sP."""

    __slots__ = ("kind", "op", "root", "tag", "reply_queue", "arrived",
                 "want", "acc")

    def __init__(self, msg: wire.CollMsg, want: int) -> None:
        self.kind = msg.kind
        self.op = msg.op
        self.root = msg.root
        self.tag = msg.tag
        self.reply_queue = msg.reply_queue
        self.arrived = 0
        self.want = want
        self.acc: Optional[int] = None


class CollectiveState:
    """Per-node collective firmware state: the tree and in-flight calls."""

    def __init__(self, plan: TreePlan) -> None:
        plan.validate()
        self.plan = plan
        #: beyond 16 nodes the firmware addresses peers with kernel-mode
        #: RAW headers (see :func:`repro.niu.niu.needs_raw_addressing`)
        self.wide = needs_raw_addressing(plan.n)
        self.pending: Dict[Tuple[int, int], _Pending] = {}


def setup_collectives(sp: "ServiceProcessor", plan: TreePlan) -> None:
    """Install the CollectiveUnit on one node's sP."""
    sp.state["collectives"] = CollectiveState(plan)
    register_msg_handler(sp, MSG_COLL_REQ, on_coll_request)
    register_msg_handler(sp, MSG_COLL_UP, on_coll_up)
    register_msg_handler(sp, MSG_COLL_DOWN, on_coll_down)


def ensure_collectives(machine, plan: Optional[TreePlan] = None) -> TreePlan:
    """Install collective firmware cluster-wide; return the active plan.

    With ``plan=None``, an already-installed CollectiveUnit keeps its
    plan and a missing one gets the default binomial tree.  An explicit
    differing ``plan`` *reinstalls* cluster-wide — runtime firmware
    reconfiguration is the platform's point — which is safe as long as no
    collective is in flight (in-flight combining state would refer to the
    old tree, so reinstalling rejects that case).
    """
    installed = [
        node.sp.state["collectives"]
        for node in machine.nodes if "collectives" in node.sp.state
    ]
    if installed and (plan is None or plan == installed[0].plan):
        return installed[0].plan
    if any(st.pending for st in installed):
        raise FirmwareError(
            "cannot replace the collective plan while collectives are "
            "in flight"
        )
    if plan is None:
        plan = binomial_tree(machine.config.n_nodes)
    for node in machine.nodes:
        setup_collectives(node.sp, plan)
    return plan


# ----------------------------------------------------------------------
# firmware handlers
# ----------------------------------------------------------------------


def _state(sp: "ServiceProcessor") -> CollectiveState:
    st = sp.state.get("collectives")
    if st is None:
        raise FirmwareError(f"{sp.name}: collective firmware not installed")
    return st


def _coll_send(sp: "ServiceProcessor", st: CollectiveState, node: int,
               queue: int, payload: bytes
               ) -> Generator["Event", None, None]:
    """One firmware message to (node, logical queue), wide-safe."""
    if st.wide:
        yield from fw_send(sp, node, payload, queue=SP_TX_GENERAL,
                           raw_queue=queue)
    else:
        yield from fw_send(sp, vdst_for(node, queue), payload,
                           queue=SP_TX_GENERAL)


def on_coll_request(sp: "ServiceProcessor", src: int, payload: bytes
                    ) -> Generator["Event", None, None]:
    """``MSG_COLL_REQ``: the local aP's single enqueue."""
    yield sp.compute(sp.fw.coll_request_insns)
    st = _state(sp)
    msg = wire.unpack_coll(payload)
    if msg.kind == wire.KIND_BCAST:
        # broadcast has no combining phase: the root's request starts the
        # down-sweep immediately
        if sp.node_id != msg.root:
            raise FirmwareError(
                f"{sp.name}: bcast request at non-root rank {sp.node_id}"
            )
        yield from _down_sweep(sp, st, msg.tag, msg.reply_queue, msg.kind,
                               msg.comm, msg.seq, msg.data)
        return
    yield from _contribute(sp, st, msg)


def on_coll_up(sp: "ServiceProcessor", src: int, payload: bytes
               ) -> Generator["Event", None, None]:
    """``MSG_COLL_UP``: a child subtree's combined contribution."""
    yield sp.compute(sp.fw.coll_combine_insns)
    st = _state(sp)
    msg = wire.unpack_coll(payload)
    yield from _contribute(sp, st, msg)


def on_coll_down(sp: "ServiceProcessor", src: int, payload: bytes
                 ) -> Generator["Event", None, None]:
    """``MSG_COLL_DOWN``: the result fanning back out over the tree."""
    yield sp.compute(sp.fw.coll_forward_insns)
    st = _state(sp)
    msg = wire.unpack_coll(payload)
    yield from _down_sweep(sp, st, msg.tag, msg.reply_queue, msg.kind,
                           msg.comm, msg.seq, msg.data)


# ----------------------------------------------------------------------
# the combining tree
# ----------------------------------------------------------------------


def _contribute(sp: "ServiceProcessor", st: CollectiveState,
                msg: wire.CollMsg) -> Generator["Event", None, None]:
    """Fold one contribution (local REQ or child UP) into pending state."""
    me = sp.node_id
    want = len(st.plan.children[me]) + 1  # children's UPs + the local REQ
    pend = st.pending.get(msg.key)
    if pend is None:
        pend = st.pending[msg.key] = _Pending(msg, want)
    if msg.data:
        value = wire.unpack_value(msg.data)
        if pend.acc is None:
            pend.acc = value
        else:
            yield sp.compute(sp.fw.coll_combine_insns)
            pend.acc = op_by_code(pend.op)(pend.acc, value)
    pend.arrived += 1
    if pend.arrived < pend.want:
        return
    # subtree complete
    del st.pending[msg.key]
    data = wire.pack_value(pend.acc) if pend.acc is not None else b""
    if me != st.plan.root:
        up = wire.pack_coll(MSG_COLL_UP, pend.kind, pend.op, msg.comm,
                            msg.seq, pend.root, pend.reply_queue, pend.tag,
                            data)
        parent = st.plan.parent[me]
        yield from _coll_send(sp, st, parent, SP_SERVICE_QUEUE, up)
        return
    # fully combined at the root
    sp.stats.counter(f"{sp.name}.coll_completed").incr()
    if pend.kind == wire.KIND_REDUCE:
        # root-only result: no down phase at all
        yield from _deliver(sp, st, pend.tag, pend.reply_queue, data)
        return
    yield from _down_sweep(sp, st, pend.tag, pend.reply_queue, pend.kind,
                           msg.comm, msg.seq, data)


def _down_sweep(sp: "ServiceProcessor", st: CollectiveState, tag: int,
                reply_queue: int, kind: int, comm: int, seq: int,
                data: bytes) -> Generator["Event", None, None]:
    """Forward the result to tree children and the local aP."""
    me = sp.node_id
    for child in st.plan.children[me]:
        down = wire.pack_coll(MSG_COLL_DOWN, kind, 0, comm, seq,
                              st.plan.root, reply_queue, tag, data)
        yield from _coll_send(sp, st, child, SP_SERVICE_QUEUE, down)
    yield from _deliver(sp, st, tag, reply_queue, data)


def _deliver(sp: "ServiceProcessor", st: CollectiveState, tag: int,
             reply_queue: int, data: bytes
             ) -> Generator["Event", None, None]:
    """Hand the result to the local aP as one mini-MPI fragment."""
    frag = (tag.to_bytes(2, "big") + len(data).to_bytes(4, "big")
            + (0).to_bytes(4, "big") + data)
    yield from _coll_send(sp, st, sp.node_id, reply_queue, frag)
    sp.stats.counter(f"{sp.name}.coll_delivered").incr()
