"""Node assembly: the application processor and the node board."""

from repro.node.ap import ApApi, AppProcessor
from repro.node.node import NodeBoard

__all__ = ["ApApi", "AppProcessor", "NodeBoard"]
