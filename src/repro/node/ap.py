"""The application processor (aP) and the program API.

The aP is a PowerPC 604e in the model's behavioural sense: user
"programs" are Python generators driven by :class:`AppProcessor`; they
see an :class:`ApApi` handle offering loads, stores, compute time, and
waiting.  Every memory operation is routed by the node's address map:

* ``CACHED`` regions go through the snooping L2;
* ``UNCACHED`` regions become single-beat bus operations;
* ``BURST`` regions use cache-line bursts where alignment allows (the
  aSRAM message-buffer windows).

Occupancy accounting is explicit: the aP is *busy* while computing or
performing memory operations (including spinning on retried bus
operations — the S-COMA stall pathology), and *idle* inside
:meth:`ApApi.wait` / :meth:`ApApi.sleep`.  The §6 experiments read this
tracker to compare per-approach processor overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from repro.bus.ops import BusOpType, BusTransaction
from repro.common.config import MachineConfig
from repro.common.errors import ProgramError
from repro.mem.address import AccessMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import NodeBoard
    from repro.sim.events import Event
    from repro.sim.process import Process


class ApApi:
    """What a user program sees: the processor's instruction repertoire.

    ``pid`` identifies the OS process the program models.  The aP tags
    every bus operation with it, and NIU queue windows enforce ownership
    against it — the paper's protection story for "more general parallel
    computing and more flexible job-scheduling in multitasking".  Pid 0
    is the kernel/single-job default that every queue accepts.
    """

    def __init__(self, ap: "AppProcessor", pid: int = 0) -> None:
        self._ap = ap
        self.node = ap.node
        self.node_id = ap.node.node_id
        self.engine = ap.engine
        self.pid = pid

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in ns."""
        return self.engine.now

    def compute(self, n_insns: int) -> Generator["Event", None, None]:
        """Execute ``n_insns`` instructions of local computation."""
        self._ap.busy.begin()
        try:
            yield self.engine.timeout(self._ap.config.ap.insn_ns(n_insns))
        finally:
            self._ap.busy.end()

    def sleep(self, ns: float) -> Generator["Event", None, None]:
        """Idle for ``ns`` (not counted as occupancy)."""
        yield self.engine.timeout(ns)

    def wait(self, event: "Event") -> Generator["Event", None, Any]:
        """Block on an event without accruing occupancy ("do other work")."""
        value = yield event
        return value

    # -- memory ------------------------------------------------------------

    def load(self, addr: int, size: int) -> Generator["Event", None, bytes]:
        """Read ``size`` bytes from physical address ``addr``."""
        return (yield from self._ap.access(addr, size, None, self.pid))

    def store(self, addr: int, data: bytes) -> Generator["Event", None, None]:
        """Write ``data`` at physical address ``addr``."""
        yield from self._ap.access(addr, len(data), data, self.pid)

    def load_u32(self, addr: int) -> Generator["Event", None, int]:
        """4-byte big-endian load."""
        raw = yield from self.load(addr, 4)
        return int.from_bytes(raw, "big")

    def store_u32(self, addr: int, value: int) -> Generator["Event", None, None]:
        """4-byte big-endian store."""
        yield from self.store(addr, (value & 0xFFFFFFFF).to_bytes(4, "big"))


class AppProcessor:
    """Drives user program generators against one node's memory system."""

    def __init__(self, node: "NodeBoard") -> None:
        self.node = node
        self.engine = node.engine
        self.config: MachineConfig = node.config
        self.name = f"ap{node.node_id}"
        self.busy = node.stats.busy_tracker(f"{self.name}.busy")
        self.tracer = node.tracer
        self.loads = 0
        self.stores = 0
        #: every program ever started on this aP; fault injection kills
        #: the live ones when the node crashes.
        self.programs: List["Process"] = []

    # -- program execution ----------------------------------------------------

    def run(self, program: Callable[..., Generator], *args: Any,
            name: Optional[str] = None, pid: int = 0) -> "Process":
        """Start ``program(api, *args)`` as a process on this aP.

        ``pid`` tags the program's bus operations for queue-ownership
        protection (0 = kernel: accepted everywhere).
        """
        api = ApApi(self, pid=pid)
        proc = self.engine.process(
            program(api, *args), name=name or f"{self.name}.{program.__name__}"
        )
        self.programs.append(proc)
        return proc

    # -- memory access routing ----------------------------------------------------

    def access(self, addr: int, size: int, data: Optional[bytes],
               pid: int = 0) -> Generator["Event", None, Optional[bytes]]:
        """Perform one load (``data is None``) or store, split as needed."""
        if size <= 0:
            raise ProgramError(f"access size must be positive, got {size}")
        region = self.node.address_map.lookup(addr, size)
        # hot path: `active` is a plain attribute, so with tracing off the
        # whole observability layer costs one attribute load here
        tr = self.tracer
        span = (tr.span("ap.store" if data is not None else "ap.load",
                        source=self.name, node=self.node.node_id,
                        track="aP", addr=addr, size=size)
                if tr is not None and tr.active else None)
        self.busy.begin()
        try:
            if data is None:
                self.loads += 1
                return (yield from self._read(region.mode, addr, size, pid))
            self.stores += 1
            yield from self._write(region.mode, addr, data, pid)
            return None
        finally:
            self.busy.end()
            if span is not None:
                span.end()

    # -- read paths -------------------------------------------------------------

    def _read(self, mode: AccessMode, addr: int, size: int, pid: int
              ) -> Generator["Event", None, bytes]:
        if mode is AccessMode.CACHED:
            parts = []
            for a, n in self._line_spans(addr, size):
                parts.append((yield from self.node.l2.load(a, n)))
            return b"".join(parts)
        parts = []
        for a, n, burst in self._bus_spans(addr, size, mode):
            op = BusOpType.READ_LINE if burst else BusOpType.READ
            txn = BusTransaction(op, a, n, master=self.name, tag=pid)
            yield from self.node.bus.transact(txn)
            parts.append(txn.data)
        # single gather of the per-span results (was: a bytearray append
        # per span plus a final bytes() copy)
        return b"".join(parts)

    def _write(self, mode: AccessMode, addr: int, data: bytes, pid: int
               ) -> Generator["Event", None, None]:
        # pin mutable buffers once, then ride zero-copy slices of the
        # immutable copy through every span's transaction
        if type(data) is not bytes:
            data = bytes(data)
        mv = memoryview(data)
        if mode is AccessMode.CACHED:
            off = 0
            for a, n in self._line_spans(addr, len(data)):
                yield from self.node.l2.store(a, mv[off : off + n])
                off += n
            return
        off = 0
        for a, n, burst in self._bus_spans(addr, len(data), mode):
            op = BusOpType.WRITE_LINE if burst else BusOpType.WRITE
            txn = BusTransaction(op, a, n, data=mv[off : off + n],
                                 master=self.name, tag=pid)
            yield from self.node.bus.transact(txn)
            off += n

    # -- access decomposition ----------------------------------------------------
    #
    # The 604 performs naturally-aligned transfers: cached accesses split
    # at line boundaries, uncached at 8-byte boundaries, burst windows use
    # full-line transfers where aligned and singles at the ragged edges.

    def _line_spans(self, addr: int, size: int):
        line = self.config.bus.line_bytes
        while size > 0:
            n = min(line - (addr % line), size)
            yield addr, n
            addr += n
            size -= n

    def _bus_spans(self, addr: int, size: int, mode: AccessMode):
        line = self.config.bus.line_bytes
        while size > 0:
            if mode is AccessMode.BURST and addr % line == 0 and size >= line:
                yield addr, line, True
                addr += line
                size -= line
            else:
                n = min(8 - (addr % 8), size)
                if mode is AccessMode.BURST:
                    n = min(n, line - (addr % line))
                yield addr, n, False
                addr += n
                size -= n
