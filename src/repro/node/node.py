"""One StarT-Voyager node: an unmodified two-slot 604e SMP board with the
NIU in the second processor slot.

Assembles Figure 2 of the paper: the aP with its in-line L2, the
standard memory controller and DRAM, and the NIU — all sharing one
coherent memory bus.  Also carves the DRAM layout:

* ``[0, user_end)``              — ordinary user/OS memory;
* ``[user_end, +numa_bytes)``    — NUMA home backing frames (reached
  only by NIU bus mastering on behalf of remote nodes);
* top ``scoma_bytes``            — the S-COMA window: local DRAM used as
  an L3 cache, covered by the clsSRAM check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bus.bus import MemoryBus
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.mem.address import AccessMode, AddressMap, Region
from repro.mem.cache import SnoopingL2
from repro.mem.dram import DRAM
from repro.niu.niu import NIU
from repro.node.ap import AppProcessor

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import NetworkPort
    from repro.sim.engine import Engine
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer


class NodeBoard:
    """One complete node: aP + L2 + DRAM + memory controller + NIU."""

    def __init__(
        self,
        engine: "Engine",
        config: MachineConfig,
        node_id: int,
        net_port: Optional["NetworkPort"],
        stats: "StatsRegistry",
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.stats = stats
        self.tracer = tracer

        dram_size = config.dram.size_bytes
        quarter = dram_size // 4
        self.scoma_bytes = min(quarter, 1 << 20)
        self.numa_bytes = min(quarter, 1 << 20)
        self.scoma_base = dram_size - self.scoma_bytes
        self.numa_backing_base = self.scoma_base - self.numa_bytes
        self.user_dram_bytes = self.numa_backing_base
        if self.user_dram_bytes <= 0:
            raise ConfigError("DRAM too small for the NUMA/S-COMA carve-outs")

        self.address_map = AddressMap()
        self.dram = DRAM(engine, config.dram, config.bus, base=0,
                         name=f"dram{node_id}")
        # three views of the one DRAM, differing only in NIU treatment
        self.address_map.add(Region("dram", 0, self.user_dram_bytes,
                                    AccessMode.CACHED, owner=self.dram))
        self.address_map.add(Region("dram.numa_backing",
                                    self.numa_backing_base, self.numa_bytes,
                                    AccessMode.CACHED, owner=self.dram))
        self.address_map.add(Region("dram.scoma", self.scoma_base,
                                    self.scoma_bytes, AccessMode.CACHED,
                                    owner=self.dram))

        self.bus = MemoryBus(engine, config.bus, self.address_map,
                             stats=stats, tracer=tracer, name=f"bus{node_id}")
        self.l2 = SnoopingL2(engine, config.l2, self.bus, self.dram,
                             name=f"l2.{node_id}")
        self.niu = NIU(engine, config, node_id, self.bus, self.address_map,
                       net_port, stats, self.scoma_base, self.scoma_bytes,
                       tracer=tracer)
        self.ap = AppProcessor(self)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the NIU's engines (the aP runs programs on demand)."""
        self.niu.start()

    # -- convenience --------------------------------------------------------

    @property
    def sp(self):
        """The NIU's service processor."""
        return self.niu.sp

    @property
    def ctrl(self):
        """The NIU's CTRL ASIC."""
        return self.niu.ctrl

    def scoma_line_addr(self, line: int) -> int:
        """DRAM address of S-COMA window line ``line``."""
        return self.niu.cls.addr_of(line)

    def peek_coherent(self, addr: int, length: int) -> bytes:
        """Untimed coherent read: modified L2 lines override DRAM.

        Testing/verification helper — what a flush-then-read would see.
        """
        line = self.config.bus.line_bytes
        out = bytearray(self.dram.peek(addr, length))
        start = addr - (addr % line)
        for base in range(start, addr + length, line):
            frame = self.l2._find(base)
            if frame is not None and frame.state.value == "M":
                lo = max(base, addr)
                hi = min(base + line, addr + length)
                out[lo - addr : hi - addr] = frame.data[lo - base : hi - base]
        return bytes(out)
