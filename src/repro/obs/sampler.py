"""Periodic queue-depth / occupancy time-series sampling.

A :class:`QueueSampler` is a simulation process that wakes every
``period_ns`` and records, per node:

* the depth (producer - consumer) of every hardware tx and rx queue,
  plus the firmware miss queue;
* the aP and sP busy fraction *over the elapsed window* (not cumulative
  — so the series shows load changing over time).

Samples are ``(t_ns, node, series, value)`` rows, bounded by
``max_samples``, and feed the Perfetto exporter's counter tracks.

Zero-overhead-when-off: nothing samples until :meth:`start` runs (the
:class:`~repro.obs.core.Observability` facade calls it for you), and a
stopped sampler's process exits at its next wakeup.  Note that a running
sampler keeps the event heap non-empty — drive sampled runs with
``machine.run_all(...)`` / ``machine.run(until=...)`` rather than a
drain-the-heap ``machine.run()``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager

Sample = Tuple[float, Optional[int], str, float]


class QueueSampler:
    """Fixed-period sampler of queue depths and processor occupancy."""

    def __init__(self, machine: "StarTVoyager", period_ns: float = 1000.0,
                 max_samples: int = 100_000) -> None:
        if period_ns <= 0:
            raise ValueError(f"sample period must be positive: {period_ns}")
        self.machine = machine
        self.period_ns = period_ns
        self.samples: Deque[Sample] = deque(maxlen=max_samples)
        self._running = False
        self._busy_last: Dict[str, float] = {}

    def start(self) -> "QueueSampler":
        """Spawn the sampling process (idempotent)."""
        if not self._running:
            self._running = True
            self.machine.engine.process(self._run(), name="obs.sampler", daemon=True)
        return self

    def stop(self) -> None:
        """Stop sampling; the process exits at its next wakeup."""
        self._running = False

    def _take(self) -> None:
        now = self.machine.engine.now
        add = self.samples.append
        for node in self.machine.nodes:
            nid = node.node_id
            for q in node.ctrl.tx_queues:
                add((now, nid, f"txq{q.index}.depth",
                     float(q.producer - q.consumer)))
            for q in node.ctrl.rx_queues:
                add((now, nid, f"rxq{q.logical_id}.depth",
                     float(q.producer - q.consumer)))
            add((now, nid, "missq.depth", float(len(node.ctrl.miss_queue))))
            for name, tracker in (("ap", node.ap.busy), ("sp", node.sp.busy)):
                key = f"{nid}.{name}"
                busy = tracker.current()
                delta = busy - self._busy_last.get(key, 0.0)
                self._busy_last[key] = busy
                add((now, nid, f"{name}.occupancy",
                     min(1.0, delta / self.period_ns)))

    def _run(self):
        engine = self.machine.engine
        while self._running:
            yield engine.timeout(self.period_ns)
            if not self._running:
                return
            self._take()

    def series(self, name: str, node: Optional[int] = None):
        """``(t_ns, value)`` pairs of one series (optionally one node)."""
        return [(t, v) for t, n, s, v in self.samples
                if s == name and (node is None or n == node)]
