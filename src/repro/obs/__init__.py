"""``repro.obs`` — the unified observability layer.

The measurement subsystem the evaluation methodology runs on: percentile
histograms for every latency site, typed span tracing rendered as
Perfetto timelines (one track per aP/sP/queue/link), schema-versioned
metrics snapshots for benchmarks, and periodic queue-depth sampling.

Typical use::

    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    machine.obs.enable("niu", "mp", "sp", "net")
    ...  # run a workload
    machine.obs.export_perfetto("trace.json")   # open in ui.perfetto.dev
    machine.obs.export_metrics("metrics.json")  # p50/p90/p99 and friends
"""

from repro.obs.core import Observability
from repro.common.histogram import (
    Histogram,
    bucket_bounds,
    bucket_index,
    bucket_mid,
)
from repro.obs.perfetto import export_perfetto, trace_events
from repro.obs.sampler import QueueSampler
from repro.obs.snapshot import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    merge_shard_exports,
    merged_metrics_snapshot,
    metrics_snapshot,
    shard_export,
    write_metrics,
)

__all__ = [
    "Observability",
    "Histogram",
    "bucket_index",
    "bucket_bounds",
    "bucket_mid",
    "QueueSampler",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "metrics_snapshot",
    "merged_metrics_snapshot",
    "shard_export",
    "merge_shard_exports",
    "write_metrics",
    "export_perfetto",
    "trace_events",
]
