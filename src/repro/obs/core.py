"""The machine-wide observability facade.

One object, hung off :class:`~repro.core.machine.StarTVoyager` as
``machine.obs``, gathers the measurement surface the paper's evaluation
methodology needs:

* category-gated typed tracing (``obs.enable("niu", "mp")``,
  ``obs.span("niu.tx", node=0, track="txq0")``) over the machine's
  :class:`~repro.sim.trace.Tracer`;
* periodic queue-depth/occupancy sampling (:meth:`start_sampler`);
* exporters: :meth:`snapshot` (schema-versioned metrics dict),
  :meth:`export_metrics` (its JSON file twin), and
  :meth:`export_perfetto` (Chrome/Perfetto timeline).

Everything here is off until asked for: with no categories enabled and
no sampler started, the only machine-wide cost is the always-on
counters/accumulators the simulator has carried since the seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.perfetto import export_perfetto
from repro.obs.sampler import QueueSampler
from repro.obs.snapshot import metrics_snapshot, write_metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.sim.trace import Span


class Observability:
    """Tracing, sampling, and export for one machine instance."""

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        self.tracer = machine.tracer
        self.samplers: List[QueueSampler] = []

    # -- tracing control ---------------------------------------------------

    def enable(self, *categories: str) -> "Observability":
        """Enable trace categories ("*" = everything); chainable."""
        self.tracer.enable(*categories)
        return self

    def disable(self, *categories: str) -> None:
        """Disable trace categories ("*" clears everything)."""
        self.tracer.disable(*categories)

    def wants(self, category: str) -> bool:
        """Hot-path guard: would records of ``category`` be kept?"""
        return self.tracer.wants(category)

    @property
    def active(self) -> bool:
        """True when any trace category is enabled."""
        return self.tracer.active

    def span(self, kind: str, source: str = "", node: Optional[int] = None,
             track: str = "", **args: Any) -> "Span":
        """Open a typed span (see :meth:`repro.sim.trace.Tracer.span`)."""
        return self.tracer.span(kind, source=source, node=node, track=track,
                                **args)

    def instant(self, kind: str, source: str = "",
                node: Optional[int] = None, track: str = "",
                **args: Any) -> None:
        """Record a zero-duration typed occurrence."""
        self.tracer.instant(kind, source=source, node=node, track=track,
                            **args)

    # -- sampling ----------------------------------------------------------

    def start_sampler(self, period_ns: float = 1000.0,
                      max_samples: int = 100_000) -> QueueSampler:
        """Start a queue-depth/occupancy sampler (see its caveats)."""
        sampler = QueueSampler(self.machine, period_ns, max_samples)
        self.samplers.append(sampler)
        return sampler.start()

    def stop_samplers(self) -> None:
        """Stop every sampler started through this facade."""
        for sampler in self.samplers:
            sampler.stop()

    # -- export ------------------------------------------------------------

    def snapshot(self, include_config: bool = True) -> Dict[str, Any]:
        """Schema-versioned metrics snapshot (see :mod:`repro.obs.snapshot`)."""
        return metrics_snapshot(self.machine, include_config=include_config)

    def export_metrics(self, path: str,
                       include_config: bool = True) -> str:
        """Write :meth:`snapshot` as JSON; returns the path."""
        return write_metrics(path, self.snapshot(include_config))

    def export_perfetto(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Build (and optionally write) the Perfetto trace document."""
        return export_perfetto(self.machine, path, samplers=self.samplers)
