"""Chrome/Perfetto ``trace_event`` export of typed trace records.

Converts a machine's :class:`~repro.sim.trace.SpanRecord` buffer (plus
any queue-depth/occupancy samples) into the Trace Event Format that
https://ui.perfetto.dev and ``chrome://tracing`` open directly:

* one *process* per node (``pid`` = node id, named ``node<i>``), plus a
  synthetic process for machine-wide records (the network);
* one *thread* per track — ``aP``, ``sP``, ``txq0``.., ``rxq5``..,
  ``net`` — so a message's life is visible hop by hop;
* spans become complete (``"X"``) events, instants become instant
  (``"i"``) events, and sampler series become counter (``"C"``) events.

Timestamps are microseconds (the format's unit); durations keep
sub-microsecond precision as floats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import json
import os

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.obs.sampler import QueueSampler

#: pid used for records with no node (network fabric, machine-wide).
MACHINE_PID = 999


def trace_events(machine: "StarTVoyager",
                 samplers: Optional[List["QueueSampler"]] = None
                 ) -> List[Dict[str, Any]]:
    """The machine's buffered typed records as trace_event dicts."""
    events: List[Dict[str, Any]] = []
    tids: Dict[Tuple[int, str], int] = {}
    pids_seen: Dict[int, None] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track or "main"},
            })
        if pid not in pids_seen:
            pids_seen[pid] = None
            name = f"node{pid}" if pid != MACHINE_PID else "machine"
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        return tids[key]

    for rec in machine.tracer.spans():
        pid = rec.node if rec.node is not None else MACHINE_PID
        tid = tid_for(pid, rec.track)
        base = {
            "name": rec.kind,
            "cat": rec.kind.split(".", 1)[0],
            "pid": pid,
            "tid": tid,
            "ts": rec.start / 1000.0,
            "args": dict(rec.args),
        }
        if rec.source:
            base["args"]["source"] = rec.source
        if rec.end > rec.start:
            base["ph"] = "X"
            base["dur"] = (rec.end - rec.start) / 1000.0
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        events.append(base)

    for sampler in samplers or ():
        for t_ns, node, series, value in sampler.samples:
            pid = node if node is not None else MACHINE_PID
            tid_for(pid, series)  # names the counter's row
            events.append({
                "ph": "C", "name": series, "pid": pid,
                "ts": t_ns / 1000.0, "args": {"value": value},
            })

    # stable, monotonic-in-ts ordering (metadata first at ts 0)
    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    return events


def export_perfetto(machine: "StarTVoyager", path: Optional[str] = None,
                    samplers: Optional[List["QueueSampler"]] = None
                    ) -> Dict[str, Any]:
    """Build (and optionally write) a complete trace_event document."""
    doc = {
        "traceEvents": trace_events(machine, samplers),
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": "startv.trace",
            "n_nodes": machine.config.n_nodes,
            "now_ns": machine.now,
        },
    }
    if path is not None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    return doc
