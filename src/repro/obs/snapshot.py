"""Schema-versioned metrics snapshots.

One machine-wide, machine-readable measurement format, so every
benchmark emits the same shape and plotting/regression tooling can stop
scraping stdout.  The schema:

====================  =====================================================
key                   contents
====================  =====================================================
``schema``            ``"startv.metrics"`` — the format's name
``schema_version``    integer, bumped on incompatible layout changes
``now_ns``            simulated time of the snapshot
``n_nodes``           machine size
``sim``               engine health: ``events_executed``, ``pending_events``,
                      plus ``wall`` — *wall-clock* gauges (``seconds``,
                      ``events_per_second``) that vary run to run with host
                      load; determinism comparisons must strip ``sim.wall``
``counters``          flat name -> int (monotonic event counts)
``accumulators``      name -> {n, mean, min, max, total, stddev,
                      p50, p90, p99} (percentiles from the log-bucketed
                      :class:`~repro.common.histogram.Histogram`)
``busy_ns``           busy-tracker name -> accumulated busy nanoseconds
``occupancy``         node id (str) -> {"ap": fraction, "sp": fraction}
``config``            flat machine configuration (``MachineConfig.describe``)
====================  =====================================================

Extra keys may appear next to these (benchmarks add ``benchmark``/
``points``); consumers must ignore keys they do not know.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager

#: current layout version of the snapshot dict below.
METRICS_SCHEMA = "startv.metrics"
METRICS_SCHEMA_VERSION = 1


def metrics_snapshot(machine: "StarTVoyager",
                     include_config: bool = True) -> Dict[str, Any]:
    """One machine's complete measurement state as a JSON-ready dict."""
    stats = machine.stats
    accumulators: Dict[str, Any] = {}
    for name, acc in sorted(stats._accumulators.items()):
        row = acc.hist.to_dict()
        row["stddev"] = acc.stddev
        accumulators[name] = row
    snapshot: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "schema_version": METRICS_SCHEMA_VERSION,
        "now_ns": machine.now,
        "n_nodes": machine.config.n_nodes,
        "sim": {
            "events_executed": machine.engine.events_executed,
            "pending_events": machine.engine.pending_events,
            # wall-clock, not simulated: nondeterministic by nature.
            "wall": {
                "seconds": machine.engine.wall_seconds,
                "events_per_second": machine.engine.events_per_second,
            },
        },
        "counters": {name: c.value
                     for name, c in sorted(stats._counters.items())},
        "accumulators": accumulators,
        "busy_ns": {name: b.current()
                    for name, b in sorted(stats._busy.items())},
        "occupancy": {
            str(node.node_id): {
                "ap": node.ap.busy.occupancy(),
                "sp": node.sp.busy.occupancy(),
            }
            for node in machine.nodes
        },
    }
    if include_config:
        snapshot["config"] = machine.config.describe()
    return snapshot


def write_metrics(path: str, snapshot: Dict[str, Any]) -> str:
    """Write one snapshot (or snapshot-carrying document) as JSON."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=_jsonable)
        fh.write("\n")
    return path


def _jsonable(value: Any) -> Any:
    """Last-resort JSON coercion (infinities from empty accumulators)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)
