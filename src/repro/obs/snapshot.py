"""Schema-versioned metrics snapshots.

One machine-wide, machine-readable measurement format, so every
benchmark emits the same shape and plotting/regression tooling can stop
scraping stdout.  The schema:

====================  =====================================================
key                   contents
====================  =====================================================
``schema``            ``"startv.metrics"`` — the format's name
``schema_version``    integer, bumped on incompatible layout changes
``now_ns``            simulated time of the snapshot (for a sharded run,
                      the maximum across shard engines)
``n_nodes``           machine size
``shards``            conservative-parallel shard count the machine ran
                      with (1 = the classic single event queue); the rest
                      of the snapshot is byte-identical at any value
``sim``               engine health: ``events_executed``, ``pending_events``
                      (summed across shards), plus ``wall`` — *wall-clock*
                      gauges (``seconds``, ``events_per_second``) that vary
                      run to run with host load; determinism comparisons
                      must strip ``sim.wall``
``counters``          flat name -> int (monotonic event counts)
``accumulators``      name -> {n, mean, min, max, total, stddev,
                      p50, p90, p99, p999} (percentiles from the
                      log-bucketed
                      :class:`~repro.common.histogram.Histogram`).  Values
                      come from per-scope partials folded in sorted-scope
                      order (:meth:`StatsRegistry.merged_accumulators`),
                      which is what makes them shard-count-invariant.
``busy_ns``           busy-tracker name -> accumulated busy nanoseconds
``occupancy``         node id (str) -> {"ap": fraction, "sp": fraction}
``directory``         cluster-wide S-COMA directory-protocol totals
                      (invalidations sent, data forwards, ack round-trips,
                      dup/stale drops) plus the sharer-set occupancy
                      histogram sampled at every read grant
``traffic``           per-application serving-traffic SLO rollup (one
                      entry per :mod:`repro.traffic` application that
                      ran: offered / completed / SLO-violation request
                      totals, goodput = within-SLO fraction of offered,
                      and the request-latency accumulator row)
``config``            flat machine configuration (``MachineConfig.describe``)
====================  =====================================================

Extra keys may appear next to these (benchmarks add ``benchmark``/
``points``); consumers must ignore keys they do not know.

Version history: v1 had no ``shards`` key and snapshotted accumulators in
raw insertion order; v2 adds ``shards`` and the canonical scope-merged
accumulator fold; v3 adds the ``directory`` section; v4 adds ``p999``
to every accumulator row and the ``traffic`` SLO section.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Dict, List, Sequence

from repro.sim.stats import Accumulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager

#: current layout version of the snapshot dict below.
METRICS_SCHEMA = "startv.metrics"
METRICS_SCHEMA_VERSION = 4

#: directory-protocol counters (per-node firmware counter suffix ->
#: snapshot key); the ``directory`` section sums them cluster-wide.
_DIRECTORY_COUNTERS = (
    ("invalidations_sent", "scoma_inv_sent"),
    ("forwards", "scoma_forwards"),
    ("ack_rounds", "scoma_ack_rounds"),
    ("dup_requests", "scoma_dup_requests"),
    ("stale_wbreq", "scoma_stale_wbreq"),
    ("stale_wbdata", "scoma_stale_wbdata"),
    ("stale_evicts", "scoma_stale_evicts"),
)

#: the sharer-occupancy accumulator (shard-invariant scoped name).
_SHARER_OCCUPANCY = "scoma.sharer_occupancy"

#: serving-traffic applications (:mod:`repro.traffic`) the ``traffic``
#: section rolls up, and the per-node request counters it sums.  Counter
#: names follow ``traffic.<app>.n<node>.<key>``.
_TRAFFIC_APPS = ("kv", "ps", "usvc")
_TRAFFIC_KEYS = ("offered", "completed", "slo_violations")


def _directory_section(counters: Dict[str, int],
                       accumulator_rows: Dict[str, Any]) -> Dict[str, Any]:
    """Cluster-wide directory-protocol totals from per-node counters."""
    section: Dict[str, Any] = {}
    for key, suffix in _DIRECTORY_COUNTERS:
        dotted = "." + suffix
        section[key] = sum(value for name, value in counters.items()
                           if name.endswith(dotted))
    section["sharer_occupancy"] = accumulator_rows.get(_SHARER_OCCUPANCY)
    return section


def _traffic_section(counters: Dict[str, int],
                     accumulator_rows: Dict[str, Any]) -> Dict[str, Any]:
    """Cluster-wide SLO rollup per serving-traffic application.

    Goodput is the within-SLO fraction of *offered* load — a drained
    simulation completes every request eventually, so raw completion
    never shows the overload knee; the SLO cutoff does.
    """
    section: Dict[str, Any] = {}
    for app in _TRAFFIC_APPS:
        prefix = f"traffic.{app}."
        totals: Dict[str, Any] = {}
        for key in _TRAFFIC_KEYS:
            dotted = "." + key
            totals[key] = sum(
                value for name, value in counters.items()
                if name.startswith(prefix) and name.endswith(dotted))
        if not any(totals.values()):
            continue  # the application did not run on this machine
        offered = totals["offered"]
        within = totals["completed"] - totals["slo_violations"]
        totals["goodput"] = within / offered if offered else 0.0
        totals["latency_ns"] = accumulator_rows.get(
            f"traffic.{app}.latency_ns")
        section[app] = totals
    return section


def _accumulator_rows(merged: Dict[str, Accumulator]) -> Dict[str, Any]:
    rows: Dict[str, Any] = {}
    for name, acc in sorted(merged.items()):
        row = acc.hist.to_dict()
        row["stddev"] = acc.stddev
        rows[name] = row
    return rows


def metrics_snapshot(machine: "StarTVoyager",
                     include_config: bool = True) -> Dict[str, Any]:
    """One machine's complete measurement state as a JSON-ready dict."""
    stats = machine.stats
    counters = {name: c.value for name, c in sorted(stats._counters.items())}
    accumulators = _accumulator_rows(stats.merged_accumulators())
    snapshot: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "schema_version": METRICS_SCHEMA_VERSION,
        "now_ns": machine.now,
        "n_nodes": machine.config.n_nodes,
        "shards": machine.config.shards,
        "sim": {
            "events_executed": machine.engine.events_executed,
            "pending_events": machine.engine.pending_events,
            # wall-clock, not simulated: nondeterministic by nature.
            "wall": {
                "seconds": machine.engine.wall_seconds,
                "events_per_second": machine.engine.events_per_second,
            },
        },
        "counters": counters,
        "accumulators": accumulators,
        "busy_ns": {name: b.current()
                    for name, b in sorted(stats._busy.items())},
        "occupancy": {
            str(node.node_id): {
                "ap": node.ap.busy.occupancy(),
                "sp": node.sp.busy.occupancy(),
            }
            for node in machine.nodes if node is not None
        },
        "directory": _directory_section(counters, accumulators),
        "traffic": _traffic_section(counters, accumulators),
    }
    if include_config:
        snapshot["config"] = machine.config.describe()
    return snapshot


def shard_export(machine: "StarTVoyager") -> Dict[str, Any]:
    """One shard sub-machine's measurement state as a *picklable* dict.

    This is the unit the sharded runner carries out of worker processes:
    raw counters, busy nanoseconds, per-scope accumulator partials
    (:class:`Accumulator` objects — pure ``__slots__`` data, they pickle
    cleanly), and per-node busy totals for occupancy.  Both runner
    backends merge the same exports via :func:`merge_shard_exports`, so
    inline and process runs cannot diverge in the merge itself.
    """
    stats = machine.stats
    return {
        "now": machine.now,
        "events_executed": machine.engine.events_executed,
        "pending_events": machine.engine.pending_events,
        "wall_seconds": machine.engine.wall_seconds,
        "counters": {name: c.value for name, c in stats._counters.items()},
        "busy": {name: b.current() for name, b in stats._busy.items()},
        "partials": {name: dict(scopes)
                     for name, scopes in stats._accumulators.items()},
        "node_busy": {
            str(node.node_id): (node.ap.busy.current(), node.sp.busy.current())
            for node in machine.nodes if node is not None
        },
    }


def merge_shard_exports(exports: Sequence[Dict[str, Any]],
                        config=None) -> Dict[str, Any]:
    """One snapshot from per-shard exports (see :func:`shard_export`).

    Counters and busy times live under node- or switch-unique names and
    integer/float-sum exactly; accumulator partials are keyed by scope,
    each scope lives on exactly one shard, and the canonical sorted-scope
    fold makes the result byte-identical to the same machine snapshotted
    unsharded (``sim.wall`` excepted — wall clocks are never
    deterministic).
    """
    if not exports:
        raise ValueError("merge_shard_exports needs at least one shard")
    now = max(e["now"] for e in exports)
    counters: Dict[str, int] = {}
    busy: Dict[str, float] = {}
    partials: Dict[str, Dict[str, List[Accumulator]]] = {}
    occupancy: Dict[str, Dict[str, float]] = {}
    events = 0
    pending = 0
    wall = 0.0
    for e in exports:
        events += e["events_executed"]
        pending += e["pending_events"]
        wall += e["wall_seconds"]
        for name, value in e["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for name, value in e["busy"].items():
            busy[name] = busy.get(name, 0.0) + value
        for name, scopes in e["partials"].items():
            by_scope = partials.setdefault(name, {})
            for scope, acc in scopes.items():
                by_scope.setdefault(scope, []).append(acc)
        for node_id, (ap_ns, sp_ns) in e["node_busy"].items():
            occupancy[node_id] = {
                "ap": ap_ns / now if now > 0 else 0.0,
                "sp": sp_ns / now if now > 0 else 0.0,
            }
    merged: Dict[str, Accumulator] = {}
    for name, by_scope in partials.items():
        acc = Accumulator(name)
        for scope in sorted(by_scope):
            for part in by_scope[scope]:
                acc.merge(part)
        merged[name] = acc
    counter_rows = dict(sorted(counters.items()))
    accumulator_rows = _accumulator_rows(merged)
    snapshot: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "schema_version": METRICS_SCHEMA_VERSION,
        "now_ns": now,
        "n_nodes": config.n_nodes if config is not None else None,
        "shards": config.shards if config is not None else None,
        "sim": {
            "events_executed": events,
            "pending_events": pending,
            "wall": {
                "seconds": wall,
                "events_per_second": events / wall if wall > 0 else 0.0,
            },
        },
        "counters": counter_rows,
        "accumulators": accumulator_rows,
        "busy_ns": dict(sorted(busy.items())),
        "occupancy": dict(sorted(occupancy.items(), key=lambda kv: int(kv[0]))),
        "directory": _directory_section(counter_rows, accumulator_rows),
        "traffic": _traffic_section(counter_rows, accumulator_rows),
    }
    if config is not None:
        snapshot["config"] = config.describe()
    return snapshot


def merged_metrics_snapshot(machines: Sequence["StarTVoyager"],
                            include_config: bool = True) -> Dict[str, Any]:
    """One snapshot for a machine simulated as several shard sub-machines
    (the inline-backend convenience over export-and-merge)."""
    if not machines:
        raise ValueError("merged_metrics_snapshot needs at least one shard")
    config = machines[0].config if include_config else None
    exports = [shard_export(m) for m in machines]
    snap = merge_shard_exports(exports, config)
    if not include_config:
        snap["n_nodes"] = machines[0].config.n_nodes
        snap["shards"] = machines[0].config.shards
    return snap


def write_metrics(path: str, snapshot: Dict[str, Any]) -> str:
    """Write one snapshot (or snapshot-carrying document) as JSON."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=_jsonable)
        fh.write("\n")
    return path


def _jsonable(value: Any) -> Any:
    """Last-resort JSON coercion (infinities from empty accumulators)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)
