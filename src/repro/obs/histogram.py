"""Compatibility shim: the histogram now lives in :mod:`repro.common`.

It moved below the simulation layer so that ``sim/stats.py`` can use it
without importing upward through ``repro.obs`` (ARCH001).  Import from
:mod:`repro.common.histogram` in new code; this module re-exports the
public names so existing callers keep working.
"""

from repro.common.histogram import (
    BUCKETS_PER_OCTAVE,
    SUB_BUCKET_BITS,
    Histogram,
    bucket_bounds,
    bucket_index,
    bucket_mid,
)

__all__ = [
    "Histogram",
    "bucket_bounds",
    "bucket_index",
    "bucket_mid",
    "BUCKETS_PER_OCTAVE",
    "SUB_BUCKET_BITS",
]
