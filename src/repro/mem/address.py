"""Node physical address map.

Each node has one flat physical address space, shared by the aP, the L2,
and the NIU's aBIU.  Regions carry an *access mode* that tells the
processor model how to reach them:

* ``CACHED``        — through the L2 (normal DRAM);
* ``UNCACHED``      — single-beat bus operations (control registers,
  Express message windows, queue pointers);
* ``BURST``         — uncached but line-burst-capable.  This models the
  paper's "transmit and receive buffers are mapped [cacheable]" aSRAM
  windows: the timing benefit of cache-line bursts without modeling SRAM
  coherence (the NIU on the real machine manages that with kill/flush
  operations; see DESIGN.md §2).

Regions also say whether the plain memory controller serves them or
whether the aBIU claims them during the snoop window.
"""

from __future__ import annotations

import bisect
import enum
from typing import Any, List, Optional


class AccessMode(enum.Enum):
    """How the processor model accesses a region (see module docstring)."""

    CACHED = "cached"
    UNCACHED = "uncached"
    BURST = "burst"


class Region:
    """A named, half-open physical address range ``[base, base+size)``."""

    __slots__ = ("name", "base", "size", "mode", "owner")

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        mode: AccessMode,
        owner: Optional[Any] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        if base < 0:
            raise ValueError(f"region {name!r} has negative base")
        self.name = name
        self.base = base
        self.size = size
        self.mode = mode
        #: the bus slave that serves accesses (None = claimed by a snooper,
        #: e.g. the aBIU for NIU windows).
        self.owner = owner

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        """True when ``[addr, addr+length)`` lies entirely inside."""
        return self.base <= addr and addr + length <= self.end

    def offset(self, addr: int) -> int:
        """Region-relative offset of ``addr``."""
        if not self.contains(addr):
            raise AddressErrorFor(self, addr)
        return addr - self.base

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Region({self.name!r}, [{self.base:#x}, {self.end:#x}), "
            f"{self.mode.value})"
        )


def AddressErrorFor(region: Region, addr: int):
    """Build a descriptive AddressError for an out-of-region access."""
    from repro.common.errors import AddressError

    return AddressError(
        f"address {addr:#x} outside region {region.name!r} "
        f"[{region.base:#x}, {region.end:#x})"
    )


class AddressMap:
    """Sorted, non-overlapping set of regions with binary-search lookup."""

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._regions: List[Region] = []

    def add(self, region: Region) -> Region:
        """Register a region; overlap with an existing region is an error."""
        from repro.common.errors import AddressError

        idx = bisect.bisect_right(self._bases, region.base)
        if idx > 0 and self._regions[idx - 1].end > region.base:
            raise AddressError(
                f"region {region.name!r} overlaps {self._regions[idx - 1].name!r}"
            )
        if idx < len(self._regions) and region.end > self._regions[idx].base:
            raise AddressError(
                f"region {region.name!r} overlaps {self._regions[idx].name!r}"
            )
        self._bases.insert(idx, region.base)
        self._regions.insert(idx, region)
        return region

    def lookup(self, addr: int, length: int = 1) -> Region:
        """The region containing ``[addr, addr+length)``; raises if unmapped
        or if the range straddles a region boundary."""
        from repro.common.errors import AddressError

        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr, length):
                return region
            if region.contains(addr):
                raise AddressError(
                    f"access [{addr:#x}, {addr + length:#x}) straddles the end "
                    f"of region {region.name!r}"
                )
        raise AddressError(f"address {addr:#x} is not mapped")

    def carve(self, name: str, base: int, size: int, mode: AccessMode,
              owner: Optional[Any] = None) -> Region:
        """Split an existing region to re-map a sub-range.

        The surrounding region keeps its name, mode and owner on both
        remaining sides; the carved range becomes a new region with the
        given attributes (owner defaults to the parent's).  This is how
        runtime reconfiguration (e.g. installing a reflective-memory
        window over part of DRAM) adjusts the map without rebuilding it.
        """
        from repro.common.errors import AddressError

        parent = self.lookup(base, size)
        idx = self._regions.index(parent)
        del self._regions[idx]
        del self._bases[idx]
        pieces = []
        if base > parent.base:
            pieces.append(Region(parent.name, parent.base, base - parent.base,
                                 parent.mode, parent.owner))
        carved = Region(name, base, size, mode,
                        parent.owner if owner is None else owner)
        pieces.append(carved)
        if base + size < parent.end:
            pieces.append(Region(f"{parent.name}+", base + size,
                                 parent.end - (base + size),
                                 parent.mode, parent.owner))
        for piece in pieces:
            self.add(piece)
        return carved

    def find(self, name: str) -> Region:
        """The region registered under ``name``."""
        from repro.common.errors import AddressError

        for r in self._regions:
            if r.name == name:
                return r
        raise AddressError(f"no region named {name!r}")

    def regions(self) -> List[Region]:
        """All regions in ascending base order."""
        return list(self._regions)


# -- canonical per-node layout ------------------------------------------------
#
# These bases define where each node maps its resources.  They are
# constants of the model, not of the paper (the paper does not publish its
# memory map); the structure — DRAM low, NIU windows high, a 1 GB NUMA
# global region — follows the text.

DRAM_BASE = 0x0000_0000
#: aSRAM window composed of message buffers, mapped burst-capable.
ASRAM_BASE = 0x6000_0000
#: sSRAM window (sP-side buffers), reachable from the aP bus via the NIU.
SSRAM_BASE = 0x6400_0000
#: uncached NIU control window: queue pointers, Express tx/rx, sysregs.
NIU_CTL_BASE = 0x7000_0000
NIU_CTL_SIZE = 0x0100_0000
#: the 1 GB NUMA global region ("a 1GB address range" in the paper).
NUMA_BASE = 0x8000_0000
NUMA_SIZE = 0x4000_0000
#: S-COMA global addresses: remote lines cached in local DRAM frames.
SCOMA_BASE = 0xC000_0000
SCOMA_SIZE = 0x2000_0000
