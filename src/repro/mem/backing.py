"""Byte-addressable backing stores.

Every memory in the model (DRAM, the NIU SRAMs, cache line frames) holds
*real bytes* in a ``bytearray``.  That is what makes the test suite able
to assert end-to-end data integrity: a DMA of random bytes must arrive
byte-exact at the far node, through every queue, packet, and bus crossing.
"""

from __future__ import annotations

from repro.common.errors import AddressError


class ByteBacking:
    """A bounds-checked window of raw bytes starting at offset zero."""

    __slots__ = ("size", "_data", "name")

    def __init__(self, size: int, name: str = "mem", fill: int = 0) -> None:
        if size <= 0:
            raise AddressError(f"backing size must be positive, got {size}")
        if not (0 <= fill <= 255):
            raise AddressError(f"fill byte out of range: {fill}")
        self.size = size
        self.name = name
        self._data = bytearray([fill]) * size if fill else bytearray(size)

    def _check(self, offset: int, length: int) -> None:
        if length < 0:
            raise AddressError(f"negative length {length}")
        if offset < 0 or offset + length > self.size:
            raise AddressError(
                f"{self.name}: access [{offset:#x}, {offset + length:#x}) "
                f"outside [0, {self.size:#x})"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes starting at ``offset``."""
        self._check(offset, length)
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset``."""
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def fill(self, offset: int, length: int, value: int = 0) -> None:
        """Set a range to one byte value."""
        self._check(offset, length)
        if not (0 <= value <= 255):
            raise AddressError(f"fill byte out of range: {value}")
        self._data[offset : offset + length] = bytes([value]) * length

    def read_u32(self, offset: int) -> int:
        """Read a big-endian 32-bit word (the 604 is big-endian)."""
        return int.from_bytes(self.read(offset, 4), "big")

    def write_u32(self, offset: int, value: int) -> None:
        """Write a big-endian 32-bit word."""
        self.write(offset, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def read_u64(self, offset: int) -> int:
        """Read a big-endian 64-bit word."""
        return int.from_bytes(self.read(offset, 8), "big")

    def write_u64(self, offset: int, value: int) -> None:
        """Write a big-endian 64-bit word."""
        self.write(offset, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big"))
