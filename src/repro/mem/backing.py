"""Byte-addressable backing stores.

Every memory in the model (DRAM, the NIU SRAMs, cache line frames) holds
*real bytes* in a ``bytearray``.  That is what makes the test suite able
to assert end-to-end data integrity: a DMA of random bytes must arrive
byte-exact at the far node, through every queue, packet, and bus crossing.

Two access styles coexist:

* :meth:`read` / :meth:`write` — copying, for small control words and
  call sites that keep the bytes around;
* :meth:`view` / :meth:`write_parts` — the zero-copy data plane.  A view
  is a read-only :class:`memoryview` aliasing the live backing store:
  valid only until the next write to that range, so it must be
  *materialized* (``bytes(view)``) at any protection boundary where the
  data outlives the source — packet/command construction being the two
  in this codebase (see DESIGN.md §"Zero-copy data plane").
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import AddressError


class ByteBacking:
    """A bounds-checked window of raw bytes starting at offset zero."""

    __slots__ = ("size", "_data", "_mv", "name")

    def __init__(self, size: int, name: str = "mem", fill: int = 0) -> None:
        if size <= 0:
            raise AddressError(f"backing size must be positive, got {size}")
        if not (0 <= fill <= 255):
            raise AddressError(f"fill byte out of range: {fill}")
        self.size = size
        self.name = name
        self._data = bytearray([fill]) * size if fill else bytearray(size)
        # One long-lived memoryview; slicing it is allocation-light and,
        # unlike slicing the bytearray, copies nothing.
        self._mv = memoryview(self._data)

    def _check(self, offset: int, length: int) -> None:
        if length < 0:
            raise AddressError(f"negative length {length}")
        if offset < 0 or offset + length > self.size:
            raise AddressError(
                f"{self.name}: access [{offset:#x}, {offset + length:#x}) "
                f"outside [0, {self.size:#x})"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes starting at ``offset``."""
        self._check(offset, length)
        # bytes(mv-slice) copies once; slicing the bytearray would copy twice.
        return bytes(self._mv[offset : offset + length])

    def view(self, offset: int, length: int) -> memoryview:
        """Read-only zero-copy window onto the live backing store.

        The view aliases the underlying bytes: a later :meth:`write` to
        the same range changes what the view yields.  Materialize with
        ``bytes(view)`` before the data crosses a protection boundary
        (packet payloads, command data) or before the source range can
        be recycled (queue slots, double buffers).
        """
        self._check(offset, length)
        return self._mv[offset : offset + length].toreadonly()

    def write(self, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset``."""
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def write_parts(self, offset: int, parts: Iterable[bytes]) -> int:
        """Scatter-gather store: land ``parts`` contiguously at ``offset``.

        The landing-store counterpart of :meth:`view` — a receive path
        can deposit ``[header, payload_view]`` in one call without first
        concatenating them into a temporary.  Returns the bytes written.
        """
        pos = offset
        data = self._data
        for part in parts:
            n = len(part)
            self._check(pos, n)
            data[pos : pos + n] = part
            pos += n
        return pos - offset

    def fill(self, offset: int, length: int, value: int = 0) -> None:
        """Set a range to one byte value."""
        self._check(offset, length)
        if not (0 <= value <= 255):
            raise AddressError(f"fill byte out of range: {value}")
        self._data[offset : offset + length] = bytes([value]) * length

    def read_u32(self, offset: int) -> int:
        """Read a big-endian 32-bit word (the 604 is big-endian)."""
        return int.from_bytes(self.read(offset, 4), "big")

    def write_u32(self, offset: int, value: int) -> None:
        """Write a big-endian 32-bit word."""
        self.write(offset, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def read_u64(self, offset: int) -> int:
        """Read a big-endian 64-bit word."""
        return int.from_bytes(self.read(offset, 8), "big")

    def write_u64(self, offset: int, value: int) -> None:
        """Write a big-endian 64-bit word."""
        self.write(offset, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big"))
