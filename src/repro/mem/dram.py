"""Main memory: DRAM behind the standard SMP memory controller.

A :class:`repro.bus.snoop.BusSlave` backed by real bytes.  Timing is the
classic first-beat / next-beat model: ``first_beat_cycles`` to the first
data beat, ``next_beat_cycles`` for each subsequent burst beat.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.bus.ops import BusTransaction
from repro.bus.snoop import BusSlave
from repro.common.config import BusConfig, DRAMConfig
from repro.mem.backing import ByteBacking

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event


class DRAM(BusSlave):
    """Byte-backed main memory serving single-beat and burst transactions."""

    def __init__(
        self,
        engine: "Engine",
        config: DRAMConfig,
        bus_config: BusConfig,
        base: int = 0,
        name: str = "dram",
    ) -> None:
        self.engine = engine
        self.config = config
        self.bus_config = bus_config
        self.base = base
        self.slave_name = name
        self.backing = ByteBacking(config.size_bytes, name=name)
        #: open row per bank (open-page model); -1 = bank closed.
        self._open_rows = [-1] * max(1, config.n_banks)
        self.row_hits = 0
        self.row_misses = 0

    # -- timing ------------------------------------------------------------

    def _first_beat_cycles(self, addr: int) -> int:
        """Row-buffer-aware first-beat latency (flat when disabled)."""
        cfg = self.config
        if not cfg.row_buffer:
            return cfg.first_beat_cycles
        row_no = (addr - self.base) // cfg.row_bytes
        bank = row_no % cfg.n_banks
        row = row_no // cfg.n_banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return cfg.row_hit_first_beat_cycles
        self.row_misses += 1
        self._open_rows[bank] = row
        return cfg.first_beat_cycles

    def access_ns(self, beats: int, addr: int = None) -> float:  # type: ignore[assignment]
        """Data-tenure duration for ``beats`` beats at ``addr``."""
        if beats <= 0:
            return 0.0
        first = (self.config.first_beat_cycles if addr is None
                 else self._first_beat_cycles(addr))
        cycles = first + (beats - 1) * self.config.next_beat_cycles
        return cycles * self.bus_config.cycle_ns

    def _beats(self, txn: BusTransaction) -> int:
        if txn.op.is_burst:
            return self.bus_config.beats_per_line
        return 1

    # -- BusSlave ------------------------------------------------------------

    def access(
        self, txn: BusTransaction
    ) -> Generator["Event", None, Optional[bytes]]:
        """Serve one transaction's data tenure."""
        yield self.engine.timeout(self.access_ns(self._beats(txn), txn.addr))
        offset = txn.addr - self.base
        if txn.op.is_write:
            assert txn.data is not None
            self.backing.write(offset, txn.data)
            return None
        if txn.op.is_read:
            return self.backing.read(offset, txn.size)
        return None  # KILL/FLUSH reach caches, not memory

    # -- zero-time debug/testing access (not bus-accurate) ---------------------

    def peek(self, addr: int, length: int) -> bytes:
        """Direct read of memory contents (testing/diagnostics only)."""
        return self.backing.read(addr - self.base, length)

    def poke(self, addr: int, data: bytes) -> None:
        """Direct write of memory contents (testing/initialization only)."""
        self.backing.write(addr - self.base, data)
