"""NIU SRAM banks.

The NIU carries two *dual-ported* SRAMs (aSRAM, sSRAM) — one port on a
604 bus side, the other on the IBus — plus the single-ported clsSRAM that
the aBIU reads in parallel with every aP bus operation (modeled in
:mod:`repro.niu.clssram`; the 4-bit states it holds are the cache side
of the MSI directory protocol defined in
:mod:`repro.coherence.protocol`).

Each port is an arbitrated resource, so simultaneous IBus and bus-side
traffic to the *same* bank contends per port while the two ports proceed
independently — the property that lets CTRL deposit an arriving message
into aSRAM while the aP reads another message out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Sequence

from repro.common.errors import AddressError
from repro.mem.backing import ByteBacking
from repro.sim.resource import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.events import Event

#: port identifiers
PORT_BUS = 0
PORT_IBUS = 1


class DualPortedSRAM:
    """Two-ported byte-backed SRAM with per-port arbitration and timing."""

    def __init__(
        self,
        engine: "Engine",
        size: int,
        access_ns: float,
        width_bytes: int = 8,
        name: str = "sram",
    ) -> None:
        if width_bytes <= 0:
            raise AddressError("SRAM width must be positive")
        self.engine = engine
        self.name = name
        self.access_ns = access_ns
        self.width_bytes = width_bytes
        self.backing = ByteBacking(size, name=name)
        self._ports = (
            Resource(engine, 1, name=f"{name}.p0"),
            Resource(engine, 1, name=f"{name}.p1"),
        )

    @property
    def size(self) -> int:
        """Capacity in bytes."""
        return self.backing.size

    def _beats(self, length: int) -> int:
        return max(1, -(-length // self.width_bytes))  # ceil division

    def read(
        self, port: int, offset: int, length: int
    ) -> Generator["Event", None, bytes]:
        """Timed read through ``port`` (process fragment)."""
        res = self._ports[port]
        yield res.request()
        try:
            yield self.engine.timeout(self._beats(length) * self.access_ns)
            return self.backing.read(offset, length)
        finally:
            res.release()

    def read_view(
        self, port: int, offset: int, length: int
    ) -> Generator["Event", None, memoryview]:
        """Timed zero-copy read through ``port`` (process fragment).

        Same arbitration and beat timing as :meth:`read`, but returns a
        read-only :class:`memoryview` aliasing the bank — valid only
        until the range is overwritten (queue slots are recycled!), so
        callers materialize at their protection boundary, not here.
        """
        res = self._ports[port]
        yield res.request()
        try:
            yield self.engine.timeout(self._beats(length) * self.access_ns)
            return self.backing.view(offset, length)
        finally:
            res.release()

    def write(
        self, port: int, offset: int, data: bytes
    ) -> Generator["Event", None, None]:
        """Timed write through ``port`` (process fragment)."""
        res = self._ports[port]
        yield res.request()
        try:
            yield self.engine.timeout(self._beats(len(data)) * self.access_ns)
            self.backing.write(offset, data)
        finally:
            res.release()

    def write_parts(
        self, port: int, offset: int, parts: Sequence[bytes]
    ) -> Generator["Event", None, None]:
        """Timed scatter-gather write through ``port`` (process fragment).

        Timing-identical to :meth:`write` of the concatenated parts (one
        arbitration, beats over the total length) without building the
        concatenation — the receive path lands ``[header, payload_view]``
        straight into the queue slot.
        """
        total = sum(len(p) for p in parts)
        res = self._ports[port]
        yield res.request()
        try:
            yield self.engine.timeout(self._beats(total) * self.access_ns)
            self.backing.write_parts(offset, parts)
        finally:
            res.release()

    # -- zero-time access for checks and pointer shadows ------------------------
    #
    # CTRL shadows queue pointers into SRAM so the aP can poll them with
    # plain loads; the shadow-update itself is charged to CTRL's own op
    # timing, so the backing-store write here is zero-time by design.

    def peek(self, offset: int, length: int) -> bytes:
        """Untimed read of the backing store."""
        return self.backing.read(offset, length)

    def poke(self, offset: int, data: bytes) -> None:
        """Untimed write of the backing store."""
        self.backing.write(offset, data)

    def port_utilization(self, port: int) -> float:
        """Busy fraction of one port (diagnostics)."""
        return self._ports[port].utilization()
