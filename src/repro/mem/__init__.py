"""Memory substrate: backing stores, DRAM, SRAMs, L2 cache, address maps."""

from repro.mem.address import AccessMode, AddressMap, Region
from repro.mem.backing import ByteBacking
from repro.mem.cache import LineState, SnoopingL2
from repro.mem.dram import DRAM
from repro.mem.sram import PORT_BUS, PORT_IBUS, DualPortedSRAM

__all__ = [
    "AccessMode",
    "AddressMap",
    "Region",
    "ByteBacking",
    "DRAM",
    "DualPortedSRAM",
    "PORT_BUS",
    "PORT_IBUS",
    "SnoopingL2",
    "LineState",
]
