"""The aP's snooping write-back L2 cache.

An MSI write-back cache between the application processor and the memory
bus (the real machine's 512 KB in-line L2).  The aP's cached loads and
stores enter here; misses become READ_LINE / RWITM bus transactions, a
store hit in Shared upgrades with a KILL, and dirty evictions write back
with WRITE_LINE.

Snooping model (documented approximation): this cache never *intervenes*
in another master's data tenure.  When it snoops a foreign transaction
that touches a line it holds Modified, it pushes the line into DRAM's
backing store at snoop time (zero simulated cost) and downgrades, so the
memory controller always serves current data.  The real 60X would retry
or intervene; collapsing that into a reflective push preserves data
correctness and the bus-crossing counts the experiments measure, at the
cost of a few cycles of absolute accuracy per conflict.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import Snooper, SnoopResult
from repro.coherence.protocol import l2_snoop_reaction
from repro.common.config import CacheConfig
from repro.common.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.bus import MemoryBus
    from repro.mem.dram import DRAM
    from repro.sim.engine import Engine
    from repro.sim.events import Event


class LineState(enum.Enum):
    """MSI coherence states."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class CacheLine:
    """One line frame: tag, state, data, LRU stamp."""

    __slots__ = ("tag", "state", "data", "lru")

    def __init__(self, line_bytes: int) -> None:
        self.tag: int = -1
        self.state = LineState.INVALID
        self.data = bytearray(line_bytes)
        self.lru = 0


class SnoopingL2(Snooper):
    """Set-associative write-back MSI cache attached to one memory bus."""

    def __init__(
        self,
        engine: "Engine",
        config: CacheConfig,
        bus: "MemoryBus",
        dram: "DRAM",
        name: str = "l2",
    ) -> None:
        self.engine = engine
        self.config = config
        self.bus = bus
        self.dram = dram
        self.name = name
        self.snooper_name = name
        self._sets: List[List[CacheLine]] = [
            [CacheLine(config.line_bytes) for _ in range(config.ways)]
            for _ in range(config.n_sets)
        ]
        self._lru_clock = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.snoop_pushes = 0
        self.upgrades = 0
        bus.attach_snooper(self)

    # -- indexing -----------------------------------------------------------

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.n_sets, line // self.config.n_sets

    def _find(self, addr: int) -> Optional[CacheLine]:
        set_idx, tag = self._index(addr)
        for frame in self._sets[set_idx]:
            if frame.state is not LineState.INVALID and frame.tag == tag:
                return frame
        return None

    def _victim(self, set_idx: int) -> CacheLine:
        frames = self._sets[set_idx]
        for frame in frames:
            if frame.state is LineState.INVALID:
                return frame
        return min(frames, key=lambda f: f.lru)

    def _touch(self, frame: CacheLine) -> None:
        self._lru_clock += 1
        frame.lru = self._lru_clock

    def _line_base(self, addr: int) -> int:
        return addr & ~(self.config.line_bytes - 1)

    # -- processor-side interface (cached accesses) ------------------------------

    def load(self, addr: int, size: int) -> Generator["Event", None, bytes]:
        """Cached load (process fragment).  Must not straddle a line."""
        self._check_span(addr, size)
        frame = self._find(addr)
        off = addr - self._line_base(addr)
        if frame is not None:
            self.hits += 1
            self._touch(frame)
            # capture before the hit delay: a snoop may invalidate the
            # frame during it, but this load was ordered ahead of that
            data = bytes(frame.data[off : off + size])
            yield self.engine.timeout(self._hit_ns())
            return data
        self.misses += 1
        frame = yield from self._fill(addr, modify=False)
        return bytes(frame.data[off : off + size])

    def store(self, addr: int, data: bytes) -> Generator["Event", None, None]:
        """Cached store (process fragment).  Must not straddle a line.

        Every path re-validates the frame after yielding: while an
        upgrade KILL is stalled (e.g. retried by the S-COMA check), a
        foreign invalidation can take the line away, and the store must
        then fall back to a full RWITM miss rather than resurrect a dead
        frame.
        """
        self._check_span(addr, len(data))
        while True:
            frame = self._find(addr)
            if frame is None:
                self.misses += 1
                frame = yield from self._fill(addr, modify=True)
                break
            if frame.state is LineState.MODIFIED:
                self.hits += 1
                self._touch(frame)
                yield self.engine.timeout(self._hit_ns())
                if self._find(addr) is frame:
                    break
                continue  # invalidated during the hit delay: retry
            # SHARED: upgrade ownership on the bus
            self.hits += 1
            self.upgrades += 1
            self._touch(frame)
            kill = BusTransaction(
                BusOpType.KILL,
                self._line_base(addr),
                self.config.line_bytes,
                master=self.name,
            )
            yield from self.bus.transact(kill)
            if self._find(addr) is frame and frame.state is not LineState.INVALID:
                frame.state = LineState.MODIFIED
                break
            # lost the line while upgrading: retry as a miss
        off = addr - self._line_base(addr)
        frame.data[off : off + len(data)] = data
        frame.state = LineState.MODIFIED

    def _fill(
        self, addr: int, modify: bool
    ) -> Generator["Event", None, CacheLine]:
        line_base = self._line_base(addr)
        set_idx, tag = self._index(addr)
        victim = self._victim(set_idx)
        if victim.state is LineState.MODIFIED:
            yield from self._writeback(victim, set_idx)
        op = BusOpType.RWITM if modify else BusOpType.READ_LINE
        txn = BusTransaction(op, line_base, self.config.line_bytes, master=self.name)
        yield from self.bus.transact(txn)
        victim.tag = tag
        victim.data[:] = txn.data  # type: ignore[arg-type]
        victim.state = LineState.MODIFIED if modify else LineState.SHARED
        self._touch(victim)
        return victim

    def _writeback(
        self, frame: CacheLine, set_idx: int
    ) -> Generator["Event", None, None]:
        self.writebacks += 1
        line_no = frame.tag * self.config.n_sets + set_idx
        addr = line_no * self.config.line_bytes
        txn = BusTransaction(
            BusOpType.WRITE_LINE,
            addr,
            self.config.line_bytes,
            data=bytes(frame.data),
            master=self.name,
        )
        yield from self.bus.transact(txn)
        frame.state = LineState.INVALID
        frame.tag = -1

    def _hit_ns(self) -> float:
        return self.config.hit_cycles * self.bus.config.cycle_ns

    def _check_span(self, addr: int, size: int) -> None:
        if size <= 0:
            raise ProgramError(f"access size must be positive, got {size}")
        if self._line_base(addr) != self._line_base(addr + size - 1):
            raise ProgramError(
                f"cached access [{addr:#x},+{size}) straddles a "
                f"{self.config.line_bytes}-byte line; split it"
            )

    # -- snooper interface -------------------------------------------------------

    def snoop(self, txn: BusTransaction) -> SnoopResult:
        """Maintain coherence against foreign masters.

        The reaction comes from the shared protocol definition
        (:data:`repro.coherence.protocol.L2_SNOOP_TABLE`): push the
        Modified data into DRAM when the foreign master needs current
        bytes (a write push lets a *partial* foreign write merge into
        our line instead of destroying it — the 60X would retry the
        writer and force a writeback first), then downgrade/invalidate.
        """
        if txn.master == self.name:
            return SnoopResult.OK
        frame = self._find(txn.addr)
        if frame is None:
            return SnoopResult.OK
        reaction = l2_snoop_reaction(frame.state.value, txn.op)
        if reaction is None:
            return SnoopResult.OK
        if reaction.push:
            self._push_to_dram(txn.addr, frame)
        if reaction.next_state is not None:
            next_state = LineState(reaction.next_state)
            if next_state is LineState.INVALID:
                frame.tag = -1
            frame.state = next_state
        return SnoopResult.OK

    def _push_to_dram(self, addr: int, frame: CacheLine) -> None:
        self.snoop_pushes += 1
        self.dram.poke(self._line_base(addr), bytes(frame.data))

    # -- diagnostics --------------------------------------------------------------

    def state_of(self, addr: int) -> LineState:
        """Coherence state of the line containing ``addr`` (testing)."""
        frame = self._find(addr)
        return frame.state if frame is not None else LineState.INVALID

    def stats(self) -> Dict[str, int]:
        """Hit/miss/writeback counters (testing/diagnostics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "snoop_pushes": self.snoop_pushes,
            "upgrades": self.upgrades,
        }
