"""StarT-Voyager reproduction.

A behavioural, cycle-approximate simulator of the SC'98 StarT-Voyager
platform: PowerPC-SMP nodes whose second processor slot holds a flexible
network interface unit (CTRL ASIC + reconfigurable BIU "FPGAs" + an
embedded firmware engine) on the MIT Arctic fat-tree network — plus the
paper's communication mechanisms (Basic/Express/TagOn/DMA message
passing, NUMA and S-COMA shared memory) and its block-transfer
experiments.

Quick start::

    from repro import StarTVoyager, default_config
    machine = StarTVoyager(default_config(n_nodes=2))

Measurement lives behind ``machine.metrics()`` (schema-versioned
snapshot with p50/p90/p99 latencies) and ``machine.obs`` (span tracing,
Perfetto export, queue-depth sampling) — see :mod:`repro.obs`.
"""

from repro.common.config import MachineConfig, ReliabilityConfig, default_config
from repro.core.inspect import describe_machine
from repro.core.machine import StarTVoyager
from repro.faults import FaultPlan
from repro.lib.mpi import MiniMPI
from repro.obs import (
    Histogram,
    Observability,
    export_perfetto,
    metrics_snapshot,
    write_metrics,
)

__version__ = "1.2.0"

__all__ = [
    # machine construction
    "StarTVoyager",
    "MachineConfig",
    "ReliabilityConfig",
    "default_config",
    # fault injection
    "FaultPlan",
    # programming layers
    "MiniMPI",
    # measurement / observability
    "Observability",
    "Histogram",
    "metrics_snapshot",
    "write_metrics",
    "export_perfetto",
    "describe_machine",
    "__version__",
]
