"""StarT-Voyager reproduction.

A behavioural, cycle-approximate simulator of the SC'98 StarT-Voyager
platform: PowerPC-SMP nodes whose second processor slot holds a flexible
network interface unit (CTRL ASIC + reconfigurable BIU "FPGAs" + an
embedded firmware engine) on the MIT Arctic fat-tree network — plus the
paper's communication mechanisms (Basic/Express/TagOn/DMA message
passing, NUMA and S-COMA shared memory) and its block-transfer
experiments.

Quick start::

    from repro import StarTVoyager, default_config
    machine = StarTVoyager(default_config(n_nodes=2))

Measurement lives behind ``machine.metrics()`` (schema-versioned
snapshot with p50/p90/p99 latencies) and ``machine.obs`` (span tracing,
Perfetto export, queue-depth sampling) — see :mod:`repro.obs`.
"""

from repro.analysis import SANITIZER_NAMES, resolve_sanitizers
from repro.common.config import MachineConfig, ReliabilityConfig, default_config
from repro.core.inspect import describe_machine
from repro.core.machine import StarTVoyager
from repro.faults import FaultPlan, LinkEvent, LinkFault, NodeCrash, SpStall
from repro.lib.mpi import MiniMPI
from repro.obs import (
    Histogram,
    Observability,
    export_perfetto,
    metrics_snapshot,
    write_metrics,
)
from repro.shard import ShardRun, run_scenario, scenario, scenario_names
from repro.sync import (
    Barrier,
    Counter,
    McsLock,
    SyncFabric,
    SyncGroup,
    TasLock,
    TicketLock,
    WorkDeque,
)
from repro.traffic import (
    KvClient,
    SloRecorder,
    TrainJob,
    UsvcClient,
    make_kv_trace,
)

__version__ = "1.4.0"

#: ``run_scenario`` under its front-door name: ``repro.run(...)``.
run = run_scenario

__all__ = [
    # machine construction
    "StarTVoyager",
    "MachineConfig",
    "ReliabilityConfig",
    "default_config",
    # sharded parallel-in-time execution (the run front door)
    "run",
    "run_scenario",
    "scenario",
    "scenario_names",
    "ShardRun",
    # fault injection
    "FaultPlan",
    "LinkEvent",
    "LinkFault",
    "NodeCrash",
    "SpStall",
    # programming layers
    "MiniMPI",
    # serving-traffic applications
    "KvClient",
    "TrainJob",
    "UsvcClient",
    "SloRecorder",
    "make_kv_trace",
    # synchronization primitives
    "SyncFabric",
    "SyncGroup",
    "Barrier",
    "Counter",
    "TasLock",
    "TicketLock",
    "McsLock",
    "WorkDeque",
    # runtime sanitizers
    "SANITIZER_NAMES",
    "resolve_sanitizers",
    # measurement / observability
    "Observability",
    "Histogram",
    "metrics_snapshot",
    "write_metrics",
    "export_perfetto",
    "describe_machine",
    "__version__",
]
