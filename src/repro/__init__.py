"""StarT-Voyager reproduction.

A behavioural, cycle-approximate simulator of the SC'98 StarT-Voyager
platform: PowerPC-SMP nodes whose second processor slot holds a flexible
network interface unit (CTRL ASIC + reconfigurable BIU "FPGAs" + an
embedded firmware engine) on the MIT Arctic fat-tree network — plus the
paper's communication mechanisms (Basic/Express/TagOn/DMA message
passing, NUMA and S-COMA shared memory) and its block-transfer
experiments.

Quick start::

    from repro import StarTVoyager, default_config
    machine = StarTVoyager(default_config(n_nodes=2))
"""

from repro.common.config import MachineConfig, default_config
from repro.core.machine import StarTVoyager

__version__ = "1.0.0"

__all__ = ["StarTVoyager", "MachineConfig", "default_config", "__version__"]
