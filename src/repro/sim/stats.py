"""Statistics collection.

Components register named statistics in a :class:`StatsRegistry`.  Three
primitive kinds cover everything the experiments need:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Accumulator` — sample statistics (latencies, sizes);
* :class:`BusyTracker` — time-weighted busy/idle accounting, the basis of
  the paper's aP/sP *occupancy* measurements.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.histogram import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        """Add ``by`` (non-negative) to the count."""
        if by < 0:
            raise SimulationError(f"counter {self.name!r} cannot decrease")
        self.value += by

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Streaming mean/min/max/variance over float samples (Welford),
    with a log-bucketed :class:`~repro.common.histogram.Histogram` riding
    along so every latency site reports p50/p90/p99 for free."""

    __slots__ = ("name", "n", "_mean", "_m2", "min", "max", "total", "hist")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.hist = Histogram(name)

    def add(self, x: float) -> None:
        """Record one sample."""
        self.n += 1
        self.total += x
        d = x - self._mean
        self._mean += d / self.n
        self._m2 += d * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self.hist.add(x)

    def merge(self, other: "Accumulator") -> None:
        """Fold ``other``'s samples into this accumulator (Chan et al.).

        The sharded metrics pipeline keeps one accumulator partial per
        *scope* (node, switch) and combines partials in sorted-scope
        order, so the merged floating-point result is byte-identical for
        any shard count — unlike interleaved :meth:`add` order, which
        would differ between one global engine and K shard engines.
        """
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            self.hist.merge(other.hist)
            return
        na, nb = self.n, other.n
        n = na + nb
        delta = other._mean - self._mean
        self._mean += delta * nb / n
        self._m2 += other._m2 + delta * delta * na * nb / n
        self.n = n
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.hist.merge(other.hist)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        return self._m2 / self.n if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Percentile estimate (bucket-resolution; 0.0 when empty)."""
        return self.hist.percentile(q)

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.hist.p50

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.hist.p90

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.hist.p99

    @property
    def p999(self) -> float:
        """99.9th-percentile estimate (SLO tail)."""
        return self.hist.p999

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Accumulator({self.name}: n={self.n} mean={self.mean:.2f} "
            f"min={self.min:.2f} max={self.max:.2f})"
        )


class BusyTracker:
    """Time-weighted busy accounting for a unit that is busy or idle.

    Supports nested ``begin``/``end`` pairs (a processor that is "busy"
    inside a handler that itself issues timed sub-work).
    """

    __slots__ = ("name", "engine", "_depth", "_since", "busy_ns")

    def __init__(self, engine: "Engine", name: str) -> None:
        self.engine = engine
        self.name = name
        self._depth = 0
        self._since = 0.0
        self.busy_ns = 0.0

    def begin(self) -> None:
        """Enter a busy section."""
        if self._depth == 0:
            self._since = self.engine.now
        self._depth += 1

    def end(self) -> None:
        """Leave a busy section."""
        if self._depth <= 0:
            raise SimulationError(f"busy tracker {self.name!r} not busy")
        self._depth -= 1
        if self._depth == 0:
            self.busy_ns += self.engine.now - self._since

    def current(self) -> float:
        """Busy ns so far, including an open section."""
        open_ns = (self.engine.now - self._since) if self._depth > 0 else 0.0
        return self.busy_ns + open_ns

    def occupancy(self, window_ns: Optional[float] = None) -> float:
        """Busy fraction over ``window_ns`` (defaults to elapsed sim time)."""
        window = window_ns if window_ns is not None else self.engine.now
        return self.current() / window if window > 0 else 0.0


class ScopedStats:
    """A view of a :class:`StatsRegistry` that tags accumulator samples
    with a *scope* (a node or switch id).

    Counters, busy trackers, and integer histogram buckets merge exactly
    in any order, so those pass straight through to the shared registry.
    Accumulator means/variances are floating-point *order dependent*, so
    each scope keeps its own partial; the registry folds partials in
    sorted-scope order (see :meth:`StatsRegistry.merged_accumulators`),
    which makes the merged result independent of event interleaving —
    and therefore identical at any shard count.
    """

    __slots__ = ("_registry", "scope")

    def __init__(self, registry: "StatsRegistry", scope: str) -> None:
        self._registry = registry
        self.scope = scope

    @property
    def engine(self) -> "Engine":
        return self._registry.engine

    def counter(self, name: str) -> Counter:
        return self._registry.counter(name)

    def accumulator(self, name: str) -> Accumulator:
        return self._registry.accumulator(name, scope=self.scope)

    def busy_tracker(self, name: str) -> BusyTracker:
        return self._registry.busy_tracker(name)

    def scoped(self, scope: str) -> "ScopedStats":
        return self._registry.scoped(scope)


class StatsRegistry:
    """Hierarchically named statistics, shared by one machine instance."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._counters: Dict[str, Counter] = {}
        #: name -> scope -> per-scope partial ("" is the unscoped root).
        self._accumulators: Dict[str, Dict[str, Accumulator]] = {}
        self._busy: Dict[str, BusyTracker] = {}
        self._scoped: Dict[str, ScopedStats] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def accumulator(self, name: str, scope: str = "") -> Accumulator:
        """Get or create the accumulator partial for ``name`` in ``scope``."""
        scopes = self._accumulators.get(name)
        if scopes is None:
            scopes = self._accumulators[name] = {}
        acc = scopes.get(scope)
        if acc is None:
            acc = scopes[scope] = Accumulator(name)
        return acc

    def busy_tracker(self, name: str) -> BusyTracker:
        """Get or create the busy tracker ``name``."""
        if name not in self._busy:
            self._busy[name] = BusyTracker(self.engine, name)
        return self._busy[name]

    def scoped(self, scope: str) -> ScopedStats:
        """A view whose accumulators are kept as per-``scope`` partials."""
        view = self._scoped.get(scope)
        if view is None:
            view = self._scoped[scope] = ScopedStats(self, scope)
        return view

    def merged_accumulators(self) -> Dict[str, Accumulator]:
        """Canonical per-name accumulators: scope partials folded in
        sorted-scope order, so the result does not depend on the order
        samples were interleaved across scopes (or shards)."""
        out: Dict[str, Accumulator] = {}
        for name, scopes in self._accumulators.items():
            merged = Accumulator(name)
            for scope in sorted(scopes):
                merged.merge(scopes[scope])
            out[name] = merged
        return out

    def report(self) -> Dict[str, float]:
        """Flat snapshot of every statistic, for experiment logs.

        Key scheme (one flat namespace, ``<aspect>.<statistic name>``):

        * ``count.<name>``   — counter value;
        * ``n.<name>``       — accumulator sample count (0 when empty, so
          a registered-but-never-hit site is visible in the log);
        * ``mean.<name>``, ``min.<name>``, ``max.<name>``,
          ``total.<name>`` — accumulator sample statistics (only when
          ``n > 0``; an empty accumulator has no meaningful extremes);
        * ``p50.<name>``, ``p99.<name>``, ``p999.<name>`` — latency
          quantiles from the riding histogram (SLO reporting needs the
          deep tail, so the set runs down to p99.9; ``max.<name>`` is
          the exact observed worst case);
        * ``busy_ns.<name>`` — busy-tracker accumulated busy time.
        """
        out: Dict[str, float] = {}
        for name, c in sorted(self._counters.items()):
            out[f"count.{name}"] = float(c.value)
        for name, a in sorted(self.merged_accumulators().items()):
            out[f"n.{name}"] = float(a.n)
            if a.n:
                out[f"mean.{name}"] = a.mean
                out[f"min.{name}"] = a.min
                out[f"max.{name}"] = a.max
                out[f"total.{name}"] = a.total
                out[f"p50.{name}"] = a.p50
                out[f"p99.{name}"] = a.p99
                out[f"p999.{name}"] = a.p999
        for name, b in sorted(self._busy.items()):
            out[f"busy_ns.{name}"] = b.current()
        return out

    def names(self) -> List[str]:
        """Every registered statistic name (diagnostics)."""
        return sorted(
            list(self._counters) + list(self._accumulators) + list(self._busy)
        )
