"""Statistics collection.

Components register named statistics in a :class:`StatsRegistry`.  Three
primitive kinds cover everything the experiments need:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Accumulator` — sample statistics (latencies, sizes);
* :class:`BusyTracker` — time-weighted busy/idle accounting, the basis of
  the paper's aP/sP *occupancy* measurements.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.histogram import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        """Add ``by`` (non-negative) to the count."""
        if by < 0:
            raise SimulationError(f"counter {self.name!r} cannot decrease")
        self.value += by

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Streaming mean/min/max/variance over float samples (Welford),
    with a log-bucketed :class:`~repro.common.histogram.Histogram` riding
    along so every latency site reports p50/p90/p99 for free."""

    __slots__ = ("name", "n", "_mean", "_m2", "min", "max", "total", "hist")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.hist = Histogram(name)

    def add(self, x: float) -> None:
        """Record one sample."""
        self.n += 1
        self.total += x
        d = x - self._mean
        self._mean += d / self.n
        self._m2 += d * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self.hist.add(x)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        return self._m2 / self.n if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Percentile estimate (bucket-resolution; 0.0 when empty)."""
        return self.hist.percentile(q)

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.hist.p50

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.hist.p90

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.hist.p99

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Accumulator({self.name}: n={self.n} mean={self.mean:.2f} "
            f"min={self.min:.2f} max={self.max:.2f})"
        )


class BusyTracker:
    """Time-weighted busy accounting for a unit that is busy or idle.

    Supports nested ``begin``/``end`` pairs (a processor that is "busy"
    inside a handler that itself issues timed sub-work).
    """

    __slots__ = ("name", "engine", "_depth", "_since", "busy_ns")

    def __init__(self, engine: "Engine", name: str) -> None:
        self.engine = engine
        self.name = name
        self._depth = 0
        self._since = 0.0
        self.busy_ns = 0.0

    def begin(self) -> None:
        """Enter a busy section."""
        if self._depth == 0:
            self._since = self.engine.now
        self._depth += 1

    def end(self) -> None:
        """Leave a busy section."""
        if self._depth <= 0:
            raise SimulationError(f"busy tracker {self.name!r} not busy")
        self._depth -= 1
        if self._depth == 0:
            self.busy_ns += self.engine.now - self._since

    def current(self) -> float:
        """Busy ns so far, including an open section."""
        open_ns = (self.engine.now - self._since) if self._depth > 0 else 0.0
        return self.busy_ns + open_ns

    def occupancy(self, window_ns: Optional[float] = None) -> float:
        """Busy fraction over ``window_ns`` (defaults to elapsed sim time)."""
        window = window_ns if window_ns is not None else self.engine.now
        return self.current() / window if window > 0 else 0.0


class StatsRegistry:
    """Hierarchically named statistics, shared by one machine instance."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, Accumulator] = {}
        self._busy: Dict[str, BusyTracker] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def accumulator(self, name: str) -> Accumulator:
        """Get or create the accumulator ``name``."""
        if name not in self._accumulators:
            self._accumulators[name] = Accumulator(name)
        return self._accumulators[name]

    def busy_tracker(self, name: str) -> BusyTracker:
        """Get or create the busy tracker ``name``."""
        if name not in self._busy:
            self._busy[name] = BusyTracker(self.engine, name)
        return self._busy[name]

    def report(self) -> Dict[str, float]:
        """Flat snapshot of every statistic, for experiment logs.

        Key scheme (one flat namespace, ``<aspect>.<statistic name>``):

        * ``count.<name>``   — counter value;
        * ``n.<name>``       — accumulator sample count (0 when empty, so
          a registered-but-never-hit site is visible in the log);
        * ``mean.<name>``, ``min.<name>``, ``max.<name>``,
          ``total.<name>`` — accumulator sample statistics (only when
          ``n > 0``; an empty accumulator has no meaningful extremes);
        * ``busy_ns.<name>`` — busy-tracker accumulated busy time.

        Percentiles live in the richer :func:`repro.obs.metrics_snapshot`
        schema, not in this flat view.
        """
        out: Dict[str, float] = {}
        for name, c in sorted(self._counters.items()):
            out[f"count.{name}"] = float(c.value)
        for name, a in sorted(self._accumulators.items()):
            out[f"n.{name}"] = float(a.n)
            if a.n:
                out[f"mean.{name}"] = a.mean
                out[f"min.{name}"] = a.min
                out[f"max.{name}"] = a.max
                out[f"total.{name}"] = a.total
        for name, b in sorted(self._busy.items()):
            out[f"busy_ns.{name}"] = b.current()
        return out

    def names(self) -> List[str]:
        """Every registered statistic name (diagnostics)."""
        return sorted(
            list(self._counters) + list(self._accumulators) + list(self._busy)
        )
