"""Events: the unit of synchronization in the simulation kernel.

A process (see :mod:`repro.sim.process`) advances by yielding
:class:`Event` objects.  The engine resumes the process when the event
*triggers*, sending the event's value into the generator (or throwing the
event's exception, if it failed).

This is a deliberately small SimPy-like core: ``Event``, ``Timeout``,
``AllOf``/``AnyOf`` combinators.  Everything else (resources, stores,
buses...) is built on these.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

#: Sentinel distinguishing "no value yet" from a triggered ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; exactly once it either :meth:`succeed`\\ s
    with a value or :meth:`fail`\\ s with an exception.  Callbacks attached
    before triggering run (via the engine, at the trigger time) in
    attachment order; callbacks attached after triggering run immediately.
    """

    __slots__ = ("engine", "_value", "_exc", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.name = name

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event is pending or failed."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} has not triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        self._value = value
        self._schedule_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._exc = exc
        self._schedule_callbacks()
        return self

    def _schedule_callbacks(self) -> None:
        # Inlined KIND_CALLBACKS push (engine._schedule_event_callbacks):
        # this runs once per triggered event, hot enough that the method
        # call and the closure the engine used to allocate both showed up
        # in profiles.  Callbacks run as a unit at the current time, after
        # already-queued same-time entries.
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            engine = self.engine
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap, (engine._now, seq, 2, callbacks, self))

    # -- waiting -------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self._callbacks is None:
            fn(self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exc!r})"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay.

    The constructor is the single hottest allocation site in the kernel
    (every modeled latency is a Timeout), so it writes the :class:`Event`
    fields directly instead of chaining ``super().__init__`` and pushes
    its KIND_SUCCEED scheduled item inline instead of going through
    ``engine._schedule_timeout``.  The name is a constant: formatting a
    per-instance ``timeout(...)`` label cost more than the heap push.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.engine = engine
        self._value = _PENDING
        self._exc = None
        self._callbacks = []
        self.name = "timeout"
        self.delay = delay
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine._now + delay, seq, 1, self, value))


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is a list of child values in the order given.  If any child
    fails, this fails with that child's exception (first failure wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="all_of")
        self._children: List[Event] = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds when the first child succeeds; value is ``(index, value)``.

    Fails if a child fails before any succeeds.
    """

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed((index, ev._value))
        else:
            self.fail(ev.exception)  # type: ignore[arg-type]
