"""The discrete-event engine.

A binary-heap scheduler over *scheduled items*: 5-tuples of
``(time, seq, kind, target, arg)``.  The sequence number makes
scheduling deterministic — two items scheduled for the same instant run
in the order they were scheduled, on every run, on every platform — and,
because it is unique, tuple comparison terminates at ``seq`` and never
inspects ``kind``/``target``/``arg``.  Determinism is a hard requirement
here: the whole point of the platform is comparing mechanisms, and noise
from dict/heap tie-breaking would poison those comparisons.

The ``kind`` field selects one of three inlined dispatch paths in the
run loop (see DESIGN.md §"Simulation kernel fast paths"):

====  ==============  =====================================================
kind  name            meaning
====  ==============  =====================================================
0     CALL            ``target`` is a no-arg callable; ``arg`` unused
1     SUCCEED         ``target`` is an :class:`Event`; succeed with ``arg``
2     CALLBACKS       ``target`` is a callback list; ``arg`` the event
====  ==============  =====================================================

Earlier revisions stored a closure per entry (``lambda: ev.succeed(v)``)
— one allocation per scheduled event plus an indirect call at dispatch.
The tagged-tuple layout removes both, which matters: the kernel executes
hundreds of thousands of items per wall second.

Time is a float in nanoseconds (see :mod:`repro.common.units`).
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.events import _PENDING, AllOf, AnyOf, Event, Timeout
from repro.sim.process import ProcGen, Process

#: scheduled-item kinds — element 2 of a heap entry.
KIND_CALL = 0
KIND_SUCCEED = 1
KIND_CALLBACKS = 2

#: "no scheduled work": the lower-bound timestamp of an empty heap.
INFINITY = float("inf")

#: one heap entry: (time, seq, kind, target, arg).
ScheduledItem = Tuple[float, int, int, Any, Any]


class SchedulePolicy:
    """Chooses which of several same-timestamp items runs next.

    With a policy installed on :attr:`Engine.schedule_policy`, every run
    loop turns a group of heap entries tied at the minimal timestamp
    into an explicit *decision point*: the whole tie group is popped (in
    seq order, so ``ready[0]`` is what the default scheduler would run),
    :meth:`choose` picks one, and the rest re-enter the heap with their
    original sequence numbers — their relative order, and their order
    against items scheduled later, is unchanged.  Items the chosen
    item's execution schedules at the same instant join the *next*
    decision point, so a policy sees every racy ordering the seq
    tie-break normally hides.

    The default policy — always index 0 — replays the engine's native
    seq order exactly; :mod:`repro.explore` builds DFS exploration and
    trace replay on top of this hook.
    """

    __slots__ = ()

    def choose(self, time: float, ready: List[ScheduledItem]) -> int:
        """Index into ``ready`` (len >= 2) of the item to execute now."""
        return 0


class Engine:
    """Event loop, clock, and factory for events and processes."""

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_crashes",
        "strict",
        "events_executed",
        "wall_seconds",
        "drain_hooks",
        "deadlock_dump",
        "process_registry",
        "schedule_policy",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[ScheduledItem] = []
        self._seq = 0
        self._crashes: List[Tuple[Process, BaseException]] = []
        #: processes whose failure should abort run() even if unjoined.
        self.strict = True
        #: total scheduled items executed — the observability layer's
        #: measure of how much simulation work a run cost.
        self.events_executed = 0
        #: wall-clock seconds spent inside run()/run_until_triggered();
        #: with :attr:`events_executed` this yields the
        #: :attr:`events_per_second` throughput gauge.
        self.wall_seconds = 0.0
        #: callables invoked whenever run() fully drains the heap — the
        #: sanitizer layer's hook for end-of-run invariants (credit
        #: conservation, deadlock detection).  Empty unless sanitizers
        #: are installed, so the off path costs one empty-list iteration
        #: per run() call.
        self.drain_hooks: List[Callable[[], None]] = []
        #: optional () -> str producing a wait-for-graph dump, appended
        #: to the drained-queue error in run_until_triggered().
        self.deadlock_dump: Optional[Callable[[], str]] = None
        #: when not None, every process created via :meth:`process` is
        #: appended here (the deadlock watchdog's roster).
        self.process_registry: Optional[List[Process]] = None
        #: optional :class:`SchedulePolicy`: when installed, groups of
        #: scheduled items tied at one timestamp become explicit decision
        #: points (see :meth:`_pop_decision`).  ``None`` (the default)
        #: keeps the plain seq-ordered pop — the byte-identical fast
        #: path.  Install before calling a run loop: the loops hoist the
        #: attribute into a local once per call.
        self.schedule_policy: Optional["SchedulePolicy"] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcGen, name: str = "", daemon: bool = False) -> Process:
        """Start a generator as a process at the current time.

        ``daemon`` marks infrastructure service loops (queue pumps,
        dispatch kernels) that legitimately idle-block forever; the
        deadlock watchdog ignores them when deciding whether a drained
        event queue left real work stuck.
        """
        proc = Process(self, gen, name, daemon=daemon)
        registry = self.process_registry
        if registry is not None:
            registry.append(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Join helper: triggers when every event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race helper: triggers on the first success."""
        return AnyOf(self, events)

    # -- scheduling (internal API used by events/processes) ---------------

    def _push(self, time: float, fn: Callable[[], None]) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, KIND_CALL, fn, None))

    def _schedule_call(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now + delay, seq, KIND_CALL, fn, None))

    def _schedule_timeout(self, ev: Event, delay: float, value: Any) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now + delay, seq, KIND_SUCCEED, ev, value))

    def _schedule_event_callbacks(
        self, ev: Event, callbacks: List[Callable[[Event], None]]
    ) -> None:
        # Callbacks run as a unit at the current time, after already-queued
        # same-time entries scheduled earlier.
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now, seq, KIND_CALLBACKS, callbacks, ev))

    def _pop_decision(self, policy: SchedulePolicy) -> ScheduledItem:
        """Pop the next item through a schedule policy.

        Gathers the whole group tied at the minimal timestamp (popped in
        seq order), lets ``policy`` choose one, and pushes the rest back
        unchanged.  A single-item group is not a decision point — the
        policy never sees it.
        """
        heap = self._heap
        first = heappop(heap)
        if not heap or heap[0][0] != first[0]:
            return first
        ready = [first]
        while heap and heap[0][0] == first[0]:
            ready.append(heappop(heap))
        index = policy.choose(first[0], ready)
        if not 0 <= index < len(ready):
            raise SimulationError(
                f"schedule policy chose index {index} out of "
                f"{len(ready)} ready items at t={first[0]:.1f}ns"
            )
        chosen = ready.pop(index)
        for item in ready:
            heappush(heap, item)
        return chosen

    def _note_process_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    def _crash_error(self) -> SimulationError:
        proc, exc = self._crashes[0]
        err = SimulationError(
            f"process {proc.name!r} crashed at t={self._now:.1f}ns"
        )
        err.__cause__ = exc
        return err

    # -- sharded execution (conservative parallel-in-time windows) ---------

    def peek_time(self) -> float:
        """Timestamp of the earliest scheduled item (``inf`` when empty).

        The sharded runner's lower-bound-timestamp exchange: every shard
        reports this, and the global safe window is their minimum plus
        the cross-shard lookahead.
        """
        heap = self._heap
        return heap[0][0] if heap else INFINITY

    def inject(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at an absolute ``time`` (boundary injection).

        Used by the shard runner to land cross-shard deliveries at their
        exact simulated timestamp.  Injection assigns the next sequence
        number, so messages injected back-to-back keep their injection
        order at equal timestamps — the runner sorts boundary messages
        canonically before injecting (see :mod:`repro.shard.runner`).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot inject at {time} < now {self._now} (lookahead "
                "violation: the conservative window was too wide)"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, KIND_CALL, fn, None))

    def run_window(self, until: float) -> float:
        """Execute every item with ``time < until`` (strictly).

        Unlike :meth:`run`, items scheduled exactly at ``until`` stay
        queued — a window ``[t, until)`` must not consume events at the
        barrier instant, because a cross-shard message may still arrive
        *at* ``until`` and tie with them.  The clock is left at the last
        executed item (never forced to ``until``) and drain hooks do not
        fire: a drained shard heap mid-run only means the shard is idle
        until its next boundary injection.  Returns :meth:`peek_time`.
        """
        heap = self._heap
        crashes = self._crashes
        policy = self.schedule_policy
        executed = 0
        t0 = perf_counter()
        try:
            while heap and heap[0][0] < until:
                if policy is None:
                    time, _seq, kind, target, arg = heappop(heap)
                else:
                    # every popped tie shares the first item's timestamp,
                    # so the whole group satisfies the `< until` guard
                    time, _seq, kind, target, arg = self._pop_decision(policy)
                self._now = time
                executed += 1
                if kind == 2:  # KIND_CALLBACKS
                    for cb in target:
                        cb(arg)
                elif kind == 1:  # KIND_SUCCEED
                    if target._value is not _PENDING or target._exc is not None:
                        raise SimulationError(f"event {target!r} triggered twice")
                    target._value = arg
                    callbacks = target._callbacks
                    target._callbacks = None
                    if callbacks:
                        self._seq = seq = self._seq + 1
                        heappush(heap, (time, seq, 2, callbacks, target))
                else:  # KIND_CALL
                    target()
                if crashes and self.strict:
                    raise self._crash_error()
        finally:
            self.events_executed += executed
            self.wall_seconds += perf_counter() - t0
        return heap[0][0] if heap else INFINITY

    def advance_to(self, time: float) -> None:
        """Move an idle clock forward to ``time`` (inter-phase sync).

        After a global drain, shard clocks sit at their last local event;
        a scenario's next phase must start from one common instant on
        every shard — the global maximum — or spawn times would diverge
        between shard counts.  Only ever moves forward, and never past
        scheduled work.
        """
        if self._heap and self._heap[0][0] < time:
            raise SimulationError(
                f"cannot advance to {time} past scheduled work at "
                f"{self._heap[0][0]}"
            )
        if time > self._now:
            self._now = time

    def finish_windows(self) -> None:
        """Run end-of-run hooks after the *global* sharded drain.

        :meth:`run_window` never fires drain hooks (a shard idling
        between windows has not finished); the runner calls this once on
        every shard when no shard has work and no message is in flight.
        """
        for hook in self.drain_hooks:
            hook()

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the simulation time when execution stopped.  If a process
        crashed with an unhandled exception and ``strict`` is set (the
        default), the first crash is re-raised — silent process death is a
        debugging nightmare in a simulator of this size.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        heap = self._heap
        crashes = self._crashes
        policy = self.schedule_policy
        executed = 0
        t0 = perf_counter()
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                if policy is None:
                    time, _seq, kind, target, arg = heappop(heap)
                else:
                    time, _seq, kind, target, arg = self._pop_decision(policy)
                self._now = time
                executed += 1
                # Inline dispatch, most frequent kind first.
                if kind == 2:  # KIND_CALLBACKS
                    for cb in target:
                        cb(arg)
                elif kind == 1:  # KIND_SUCCEED (the Timeout fast path)
                    if target._value is not _PENDING or target._exc is not None:
                        raise SimulationError(f"event {target!r} triggered twice")
                    target._value = arg
                    callbacks = target._callbacks
                    target._callbacks = None
                    if callbacks:
                        self._seq = seq = self._seq + 1
                        heappush(heap, (time, seq, 2, callbacks, target))
                else:  # KIND_CALL
                    target()
                if crashes and self.strict:
                    raise self._crash_error()
            else:
                if until is not None:
                    self._now = until
                for hook in self.drain_hooks:
                    hook()
        finally:
            self.events_executed += executed
            self.wall_seconds += perf_counter() - t0
        return self._now

    def run_until_triggered(self, ev: Event, limit: Optional[float] = None) -> Any:
        """Run until ``ev`` triggers; return its value.

        Raises :class:`DeadlockError` if the event queue drains first (a
        deadlock from the waiter's perspective) or :class:`SimulationError`
        when the time ``limit`` is hit.  When the deadlock watchdog is
        installed, the drained-queue error carries its wait-for graph.
        """
        heap = self._heap
        crashes = self._crashes
        policy = self.schedule_policy
        executed = 0
        t0 = perf_counter()
        try:
            while ev._value is _PENDING and ev._exc is None:  # not triggered
                if not heap:
                    msg = f"event queue drained before {ev!r} triggered (deadlock?)"
                    dump = self.deadlock_dump
                    if dump is not None:
                        detail = dump()
                        if detail:
                            msg += "\n" + detail
                    raise DeadlockError(msg)
                if limit is not None and heap[0][0] > limit:
                    raise SimulationError(f"time limit {limit} hit before {ev!r}")
                if policy is None:
                    time, _seq, kind, target, arg = heappop(heap)
                else:
                    time, _seq, kind, target, arg = self._pop_decision(policy)
                self._now = time
                executed += 1
                if kind == 2:  # KIND_CALLBACKS
                    for cb in target:
                        cb(arg)
                elif kind == 1:  # KIND_SUCCEED
                    if target._value is not _PENDING or target._exc is not None:
                        raise SimulationError(f"event {target!r} triggered twice")
                    target._value = arg
                    callbacks = target._callbacks
                    target._callbacks = None
                    if callbacks:
                        self._seq = seq = self._seq + 1
                        heappush(heap, (time, seq, 2, callbacks, target))
                else:  # KIND_CALL
                    target()
                if crashes and self.strict:
                    raise self._crash_error()
        finally:
            self.events_executed += executed
            self.wall_seconds += perf_counter() - t0
        return ev.value

    # -- introspection -----------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Entries currently in the scheduling heap (diagnostics)."""
        return len(self._heap)

    @property
    def events_per_second(self) -> float:
        """Wall-clock kernel throughput: executed items / run-loop seconds.

        This is a *wall-clock* gauge — it varies run to run with host
        load, so the observability layer reports it under ``sim.wall``,
        which determinism comparisons must strip.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds
