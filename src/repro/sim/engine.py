"""The discrete-event engine.

A binary-heap scheduler over ``(time, sequence, callback)`` entries.  The
sequence number makes scheduling deterministic: two callbacks scheduled
for the same instant run in the order they were scheduled, on every run,
on every platform.  Determinism is a hard requirement here — the whole
point of the platform is comparing mechanisms, and noise from dict/heap
tie-breaking would poison those comparisons.

Time is a float in nanoseconds (see :mod:`repro.common.units`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import ProcGen, Process


class Engine:
    """Event loop, clock, and factory for events and processes."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._crashes: List[Tuple[Process, BaseException]] = []
        #: processes whose failure should abort run() even if unjoined.
        self.strict = True
        #: total callbacks executed — the observability layer's measure
        #: of how much simulation work a run cost.
        self.events_executed = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcGen, name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Join helper: triggers when every event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race helper: triggers on the first success."""
        return AnyOf(self, events)

    # -- scheduling (internal API used by events/processes) ---------------

    def _push(self, time: float, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def _schedule_call(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._push(self._now + delay, fn)

    def _schedule_timeout(self, ev: Event, delay: float, value: Any) -> None:
        self._push(self._now + delay, lambda: ev.succeed(value))

    def _schedule_event_callbacks(
        self, ev: Event, callbacks: List[Callable[[Event], None]]
    ) -> None:
        # Callbacks run as a unit at the current time, after already-queued
        # same-time entries scheduled earlier.
        def run() -> None:
            for cb in callbacks:
                cb(ev)

        self._push(self._now, run)

    def _note_process_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the simulation time when execution stopped.  If a process
        crashed with an unhandled exception and ``strict`` is set (the
        default), the first crash is re-raised — silent process death is a
        debugging nightmare in a simulator of this size.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if time < self._now:  # pragma: no cover - heap invariant
                raise SimulationError("time went backwards")
            self._now = time
            self.events_executed += 1
            fn()
            if self._crashes and self.strict:
                proc, exc = self._crashes[0]
                raise SimulationError(
                    f"process {proc.name!r} crashed at t={self._now:.1f}ns"
                ) from exc
        else:
            if until is not None:
                self._now = until
        return self._now

    def run_until_triggered(self, ev: Event, limit: Optional[float] = None) -> Any:
        """Run until ``ev`` triggers; return its value.

        Raises :class:`SimulationError` if the event queue drains first (a
        deadlock from the waiter's perspective) or the time ``limit`` is
        hit.
        """
        while not ev.triggered:
            if not self._heap:
                raise SimulationError(
                    f"event queue drained before {ev!r} triggered (deadlock?)"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"time limit {limit} hit before {ev!r}")
            time, _seq, fn = heapq.heappop(self._heap)
            self._now = time
            self.events_executed += 1
            fn()
            if self._crashes and self.strict:
                proc, exc = self._crashes[0]
                raise SimulationError(
                    f"process {proc.name!r} crashed at t={self._now:.1f}ns"
                ) from exc
        return ev.value

    @property
    def pending_events(self) -> int:
        """Entries currently in the scheduling heap (diagnostics)."""
        return len(self._heap)
