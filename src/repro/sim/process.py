"""Processes: generator-driven concurrent activities.

A process wraps a Python generator.  The generator models one hardware
unit's control flow (a bus master's transaction sequence, a firmware
handler, a switch's forwarding loop...).  It advances by ``yield``-ing
:class:`~repro.sim.events.Event` objects; the engine resumes it with the
event's value when the event triggers, or throws the event's exception
into it.

A ``Process`` is itself an event: it triggers with the generator's return
value when the generator finishes, so processes can wait on each other
(fork/join) simply by yielding the child process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.common.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

ProcGen = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator, schedulable and joinable.

    Created through :meth:`repro.sim.engine.Engine.process`.  The first
    step runs at the current simulation time (scheduled, not inline, so
    creation order does not leak into event order subtleties).
    """

    __slots__ = ("_gen", "_waiting_on", "_started", "daemon")

    def __init__(
        self, engine: "Engine", gen: ProcGen, name: str = "", daemon: bool = False
    ) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget a yield?"
            )
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._started = False
        #: infrastructure service loop — expected to idle-block forever,
        #: invisible to the deadlock watchdog.
        self.daemon = daemon
        engine._schedule_call(self._first_step)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        blocked on an event detaches it from that event (the event may
        still trigger later; the process simply no longer waits on it).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        self._waiting_on = None
        self.engine._schedule_call(lambda: self._resume(throw=Interrupt(cause)))

    # -- engine plumbing -------------------------------------------------

    def _first_step(self) -> None:
        if self._started:  # pragma: no cover - defensive
            return
        self._started = True
        self._resume(send=None)

    def _on_event(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            return  # stale wakeup: the process was interrupted meanwhile
        self._waiting_on = None
        if ev.ok:
            self._resume(send=ev._value)
        else:
            self._resume(throw=ev.exception)

    def _resume(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # A crashed process fails its join-event so parents see the
            # error.  Only *unjoined* crashes surface through the engine —
            # a parent that already yielded on this process receives the
            # exception itself and decides what to do with it.
            if not self._callbacks:
                self.engine._note_process_crash(self, exc)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            if not self._callbacks:
                self.engine._note_process_crash(self, err)
            self.fail(err)
            self._gen.close()
            return
        self._waiting_on = target
        target.add_callback(self._on_event)
