"""Lightweight event tracing.

A bounded ring of ``(time, source, kind, detail)`` records.  Tracing is
off by default — a simulator this size cannot afford per-event string
formatting on hot paths — and is enabled per category, so a test can
trace ``"bus"`` without paying for ``"net"``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, NamedTuple, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class TraceRecord(NamedTuple):
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    detail: Any


class Tracer:
    """Category-filtered bounded trace buffer."""

    def __init__(self, engine: "Engine", capacity: int = 10_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._enabled: Set[str] = set()
        self._all = False

    def enable(self, *categories: str) -> None:
        """Enable tracing of the given categories ("*" = everything)."""
        for cat in categories:
            if cat == "*":
                self._all = True
            else:
                self._enabled.add(cat)

    def disable(self, *categories: str) -> None:
        """Disable categories ("*" clears everything)."""
        for cat in categories:
            if cat == "*":
                self._all = False
                self._enabled.clear()
            else:
                self._enabled.discard(cat)

    def wants(self, category: str) -> bool:
        """True when records of ``category`` would be kept (hot-path guard)."""
        return self._all or category in self._enabled

    def emit(self, source: str, kind: str, detail: Any = None) -> None:
        """Record one occurrence if its category (= ``kind`` prefix) is on.

        ``kind`` uses dotted categories: ``bus.read``, ``net.send`` — the
        part before the first dot is the filter category.
        """
        cat = kind.split(".", 1)[0]
        if not self.wants(cat):
            return
        self._records.append(TraceRecord(self.engine.now, source, kind, detail))

    def records(
        self, kind_prefix: Optional[str] = None, source: Optional[str] = None
    ) -> List[TraceRecord]:
        """Snapshot of matching records in time order."""
        out = []
        for r in self._records:
            if kind_prefix is not None and not r.kind.startswith(kind_prefix):
                continue
            if source is not None and r.source != source:
                continue
            out.append(r)
        return out

    def clear(self) -> None:
        """Drop all buffered records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
