"""Lightweight event tracing: legacy string records and typed spans.

Two record families share one category-filtered, bounded tracer:

* legacy :class:`TraceRecord` — flat ``(time, source, kind, detail)``
  occurrences kept for existing tests and ad-hoc debugging;
* typed :class:`SpanRecord` — structured occurrences with a start *and*
  an end time, a node id and a display track, produced through
  :meth:`Tracer.span` / :meth:`Tracer.instant`.  These are what the
  :mod:`repro.obs` Perfetto exporter renders as per-node aP/sP/queue
  timelines.

Tracing is off by default — a simulator this size cannot afford
per-event record building on hot paths — and is enabled per category, so
a test can trace ``"niu"`` without paying for ``"net"``.  Hot paths must
keep the *wants-first* discipline::

    if tracer.active and tracer.wants("niu"):
        span = tracer.span("niu.tx", node=i, track=f"txq{q}")
        ...
        span.end(bytes=n)

``active`` is a plain attribute (no call) so the all-off case costs one
attribute load; with the category off, :meth:`Tracer.span` returns the
shared :data:`NULL_SPAN` singleton and allocates nothing.
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Any, Deque, Dict, List, NamedTuple,
                    Optional, Set, Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class TraceRecord(NamedTuple):
    """One traced occurrence (legacy flat form)."""

    time: float
    source: str
    kind: str
    detail: Any


class SpanRecord(NamedTuple):
    """One typed occurrence: an interval (or instant, when start == end).

    ``track`` names the timeline the record belongs to ("aP", "sP",
    "txq0", "net", ...); ``node`` scopes it to one node board (None for
    machine-wide records).  ``args`` is a tuple of (key, value) pairs —
    cheap to build, hashable, and JSON-friendly after ``dict(args)``.
    """

    start: float
    end: float
    kind: str
    source: str
    node: Optional[int]
    track: str
    args: Tuple[Tuple[str, Any], ...]


class Span:
    """An open interval; call :meth:`end` (or use ``with``) to record it."""

    __slots__ = ("_tracer", "kind", "source", "node", "track", "start",
                 "_args", "_closed")

    def __init__(self, tracer: "Tracer", kind: str, source: str,
                 node: Optional[int], track: str,
                 args: Tuple[Tuple[str, Any], ...]) -> None:
        self._tracer = tracer
        self.kind = kind
        self.source = source
        self.node = node
        self.track = track
        self.start = tracer.engine.now
        self._args = args
        self._closed = False

    def end(self, **extra: Any) -> None:
        """Close the span at the current time and record it."""
        if self._closed:
            return
        self._closed = True
        args = self._args + tuple(extra.items()) if extra else self._args
        tracer = self._tracer
        tracer._spans.append(SpanRecord(
            self.start, tracer.engine.now, self.kind, self.source,
            self.node, self.track, args,
        ))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()


class _NullSpan:
    """Shared no-op stand-in returned when a span's category is off."""

    __slots__ = ()

    def end(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


#: the singleton returned by :meth:`Tracer.span` when tracing is off —
#: callers can compare identity to prove the zero-allocation path.
NULL_SPAN = _NullSpan()


class Tracer:
    """Category-filtered bounded trace buffer (legacy records + spans)."""

    def __init__(self, engine: "Engine", capacity: int = 10_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._spans: Deque[SpanRecord] = deque(maxlen=capacity)
        self._enabled: Set[str] = set()
        self._all = False
        #: True when any category is enabled — a plain attribute so hot
        #: paths can skip even the ``wants()`` call when tracing is off.
        self.active = False

    def enable(self, *categories: str) -> None:
        """Enable tracing of the given categories ("*" = everything)."""
        for cat in categories:
            if cat == "*":
                self._all = True
            else:
                self._enabled.add(cat)
        self.active = self._all or bool(self._enabled)

    def disable(self, *categories: str) -> None:
        """Disable categories ("*" clears everything)."""
        for cat in categories:
            if cat == "*":
                self._all = False
                self._enabled.clear()
            else:
                self._enabled.discard(cat)
        self.active = self._all or bool(self._enabled)

    def wants(self, category: str) -> bool:
        """True when records of ``category`` would be kept (hot-path guard)."""
        return self._all or category in self._enabled

    # -- legacy flat records -----------------------------------------------

    def emit(self, source: str, kind: str, detail: Any = None) -> None:
        """Record one occurrence if its category (= ``kind`` prefix) is on.

        ``kind`` uses dotted categories: ``bus.read``, ``net.send`` — the
        part before the first dot is the filter category.
        """
        cat = kind.split(".", 1)[0]
        if not self.wants(cat):
            return
        self._records.append(TraceRecord(self.engine.now, source, kind, detail))

    def records(
        self, kind_prefix: Optional[str] = None, source: Optional[str] = None
    ) -> List[TraceRecord]:
        """Snapshot of matching legacy records in time order."""
        out = []
        for r in self._records:
            if kind_prefix is not None and not r.kind.startswith(kind_prefix):
                continue
            if source is not None and r.source != source:
                continue
            out.append(r)
        return out

    # -- typed spans -------------------------------------------------------

    def span(self, kind: str, source: str = "", node: Optional[int] = None,
             track: str = "", **args: Any):
        """Open a typed span (category = ``kind`` prefix before the dot).

        Returns :data:`NULL_SPAN` — no allocation, no record — when the
        category is off.  Close with ``span.end()`` or a ``with`` block.
        """
        cat = kind.split(".", 1)[0]
        if not self.wants(cat):
            return NULL_SPAN
        return Span(self, kind, source, node, track, tuple(args.items()))

    def instant(self, kind: str, source: str = "", node: Optional[int] = None,
                track: str = "", **args: Any) -> None:
        """Record a zero-duration typed occurrence (guarded like spans)."""
        cat = kind.split(".", 1)[0]
        if not self.wants(cat):
            return
        now = self.engine.now
        self._spans.append(SpanRecord(now, now, kind, source, node, track,
                                      tuple(args.items())))

    def spans(self, kind_prefix: Optional[str] = None,
              node: Optional[int] = None) -> List[SpanRecord]:
        """Snapshot of matching typed records in start-time order."""
        out = []
        for r in self._spans:
            if kind_prefix is not None and not r.kind.startswith(kind_prefix):
                continue
            if node is not None and r.node != node:
                continue
            out.append(r)
        out.sort(key=lambda r: (r.start, r.end))
        return out

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Drop all buffered records (both families)."""
        self._records.clear()
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._records) + len(self._spans)

    def counts(self) -> Dict[str, int]:
        """Buffered record counts per family (diagnostics)."""
        return {"records": len(self._records), "spans": len(self._spans)}
