"""Shared resources with FIFO or priority arbitration.

Buses, SRAM ports, the IBus, link transmitters — anything only one user
may hold at a time — are modeled as a :class:`Resource`.  Requests queue;
grants are events.  ``PriorityResource`` orders waiters by a priority key
(lower wins), with FIFO order among equals, which is exactly the shape of
CTRL's transmit-queue arbitration and the Arctic two-priority links.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Resource:
    """A counted resource with FIFO grant order (capacity defaults to 1)."""

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_in_use",
        "_waiters",
        "_busy_since",
        "_busy_time",
        "_req_name",
    )

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # utilization accounting
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        # precomputed: request() is on every bus/SRAM/link fast path.
        self._req_name = "req:" + name

    # -- acquisition -----------------------------------------------------

    def request(self) -> Event:
        """An event that succeeds when one unit is granted to the caller."""
        ev = Event(self.engine, self._req_name)
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; the longest-waiting request (if any) is granted."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.engine.now - self._busy_since
            self._busy_since = None
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.triggered:  # cancelled/failed externally
                continue
            self._grant(ev)
            break

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        if self._busy_since is None:
            self._busy_since = self.engine.now
        ev.succeed(self)

    # -- convenience -----------------------------------------------------

    def using(self, hold_ns: float) -> Generator[Event, None, None]:
        """Process fragment: acquire, hold for ``hold_ns``, release.

        Usage inside a process body::

            yield from resource.using(25.0)
        """
        yield self.request()
        try:
            yield self.engine.timeout(hold_ns)
        finally:
            self.release()

    # -- introspection -----------------------------------------------------

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a grant."""
        return len(self._waiters)

    def busy_time(self) -> float:
        """Total ns during which at least one unit was held."""
        extra = (self.engine.now - self._busy_since) if self._busy_since is not None else 0.0
        return self._busy_time + extra

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the resource was busy."""
        return self.busy_time() / self.engine.now if self.engine.now > 0 else 0.0


class PriorityResource(Resource):
    """A resource whose waiters are granted lowest-priority-value first.

    Ties break FIFO via a sequence counter, preserving determinism.
    """

    __slots__ = ("_pwaiters", "_seq")

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        super().__init__(engine, capacity, name)
        self._pwaiters: List[Tuple[int, int, Event]] = []
        self._seq = 0

    def request(self, priority: int = 0) -> Event:  # type: ignore[override]
        ev = Event(self.engine, self._req_name)
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._seq += 1
            heapq.heappush(self._pwaiters, (priority, self._seq, ev))
        return ev

    def release(self) -> None:  # type: ignore[override]
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.engine.now - self._busy_since
            self._busy_since = None
        while self._pwaiters:
            _prio, _seq, ev = heapq.heappop(self._pwaiters)
            if ev.triggered:
                continue
            self._grant(ev)
            break

    @property
    def queue_length(self) -> int:  # type: ignore[override]
        return len(self._pwaiters)

    def using(self, hold_ns: float, priority: int = 0):  # type: ignore[override]
        """Acquire at ``priority``, hold, release (see :meth:`Resource.using`)."""
        yield self.request(priority)
        try:
            yield self.engine.timeout(hold_ns)
        finally:
            self.release()
