"""Discrete-event simulation kernel.

A minimal, deterministic SimPy-like core: an event-heap :class:`Engine`,
generator :class:`Process`\\ es, :class:`Event`/:class:`Timeout`
synchronization, arbitrated :class:`Resource`\\ s, bounded FIFO
:class:`Store`\\ s, and statistics/tracing infrastructure.  Everything in
the StarT-Voyager model is built from these pieces.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, ProcGen, Process
from repro.sim.resource import PriorityResource, Resource
from repro.sim.stats import Accumulator, BusyTracker, Counter, StatsRegistry
from repro.sim.store import Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcGen",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "Store",
    "Counter",
    "Accumulator",
    "BusyTracker",
    "StatsRegistry",
    "Tracer",
    "TraceRecord",
]
