"""Bounded FIFO stores with blocking put/get.

Hardware FIFOs — queue SRAM buffers, the TxU/RxU network FIFOs, link
input buffers, the aBIU→sBIU queue — are modeled as :class:`Store`:
``put`` blocks when full (backpressure), ``get`` blocks when empty.
Both return events, so producers and consumers are ordinary processes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

from repro.common.errors import QueueEmptyError, QueueFullError, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Store:
    """A FIFO of items with optional capacity (None = unbounded)."""

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_items",
        "_getters",
        "_putters",
        "total_put",
        "total_got",
        "peak_depth",
        "_put_name",
        "_get_name",
    )

    def __init__(
        self, engine: "Engine", capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        # statistics
        self.total_put = 0
        self.total_got = 0
        self.peak_depth = 0
        # Event names precomputed once: put/get are hot enough that a
        # per-call f-string was measurable in kernel profiles.
        self._put_name = "put:" + name
        self._get_name = "get:" + name

    # -- blocking interface ------------------------------------------------

    def put(self, item: Any) -> Event:
        """Event that succeeds once ``item`` has been accepted."""
        ev = Event(self.engine, self._put_name)
        if self.capacity is None or len(self._items) < self.capacity:
            self._accept(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event that succeeds with the oldest item."""
        ev = Event(self.engine, self._get_name)
        if self._items:
            ev.succeed(self._pop())
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    # -- non-blocking interface ---------------------------------------------

    def try_put(self, item: Any) -> None:
        """Immediate put; raises :class:`QueueFullError` when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise QueueFullError(f"store {self.name!r} full ({self.capacity})")
        self._accept(item)

    def try_get(self) -> Any:
        """Immediate get; raises :class:`QueueEmptyError` when empty."""
        if not self._items:
            raise QueueEmptyError(f"store {self.name!r} empty")
        item = self._pop()
        self._drain_putters()
        return item

    def peek(self) -> Any:
        """Oldest item without removing it; raises when empty."""
        if not self._items:
            raise QueueEmptyError(f"store {self.name!r} empty")
        return self._items[0]

    # -- internals ---------------------------------------------------------

    def _accept(self, item: Any) -> None:
        # Hand directly to a waiting getter when one exists, preserving FIFO.
        while self._getters:
            ev = self._getters.popleft()
            if ev.triggered:
                continue
            self.total_put += 1
            self.total_got += 1
            ev.succeed(item)
            return
        self._items.append(item)
        self.total_put += 1
        depth = len(self._items)
        if depth > self.peak_depth:
            self.peak_depth = depth

    def _pop(self) -> Any:
        self.total_got += 1
        return self._items.popleft()

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            if ev.triggered:
                continue
            self._accept(item)
            ev.succeed(item)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        """True when no items are queued."""
        return not self._items

    @property
    def is_full(self) -> bool:
        """True when at capacity (never true for unbounded stores)."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def snapshot(self) -> List[Any]:
        """Copy of the queued items, oldest first (testing/diagnostics)."""
        return list(self._items)
