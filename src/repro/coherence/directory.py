"""The home-node directory controller: a pure MSI state machine.

One :class:`DirectoryController` lives on every node's sP (inside the
S-COMA firmware state) and arbitrates the lines that node is home for.
It is deliberately I/O-free: every public method applies one protocol
event from :data:`repro.coherence.protocol.DIR_TABLE` and returns an
*action descriptor* — a plain tuple the firmware interprets into
messages, DRAM moves, and clsSRAM updates.  Keeping the decision logic
here and the mechanism in firmware is what lets the coherence sanitizer
machine-check the decisions independently.

Action descriptors:

===============================  =====================================
returned by                      meaning for the firmware
===============================  =====================================
``("queue",)``                   request queued behind a busy line
``("dup",)``                     duplicate from the current owner —
                                 drop (a grant is already in flight)
``("grant", want_rw, requester)``  move data / flip states for the
                                 requester; the directory is already
                                 settled in its post-grant state
``("invalidate", targets)``      send INV to each target (sorted)
``("recall", owner, downgrade)`` send WBREQ to the owner
``("wait",)``                    ack counted, more outstanding
``("stale",)``                   late echo of a settled transition —
                                 count and drop, do not touch data
``("settle",)``                  dirty eviction re-validated the home
                                 frame: set the home's own line RW
``("removed",)``                 sharer left the sharer set
===============================  =====================================

Grant descriptors carry ``keep_ro=True`` (4th element) when the home
must (re)take a readable copy before forwarding — a read recall or a
read completed by a crossing dirty eviction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.coherence import protocol as P
from repro.common.errors import FirmwareError


class DirEntry:
    """Home-side directory state for one line."""

    __slots__ = ("state", "sharers", "owner", "pending_acks", "pending",
                 "waiters")

    def __init__(self) -> None:
        self.state: str = P.HOME_VALID
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.pending_acks: int = 0
        #: the request being completed while BUSY: (want_rw, requester).
        self.pending: Optional[Tuple[bool, int]] = None
        #: queued requests that arrived while BUSY.
        self.waiters: List[Tuple[bool, int]] = []


class DirectoryController:
    """Directory decisions for the lines one node is home for."""

    __slots__ = ("node_id", "directory", "sanitizer")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.directory: Dict[int, DirEntry] = {}
        #: coherence sanitizer hook (None = checks disabled, zero cost).
        self.sanitizer = None

    def entry(self, line: int) -> DirEntry:
        if line not in self.directory:
            self.directory[line] = DirEntry()
        return self.directory[line]

    def sharer_count(self, line: int) -> int:
        return len(self.entry(line).sharers)

    # -- guards ------------------------------------------------------------

    def _guard(self, name: str, entry: DirEntry, requester: Optional[int],
               src: Optional[int]) -> bool:
        if name == "other_sharers":
            return bool(entry.sharers - {requester})
        if name == "remote_requester":
            return requester != self.node_id
        if name == "requester_is_owner":
            return entry.owner == requester
        if name == "src_is_owner":
            return entry.owner == src
        if name == "stale_writeback":
            return entry.pending is None or entry.owner != src
        if name == "more_acks":
            return entry.pending_acks > 1
        if name == "pending_read":
            return entry.pending is not None and not entry.pending[0]
        raise FirmwareError(f"unknown directory guard {name!r}")

    # -- the single transition point ---------------------------------------

    def _apply(self, line: int, event: str, requester: Optional[int] = None,
               src: Optional[int] = None,
               want_rw: Optional[bool] = None) -> Tuple:
        entry = self.entry(line)
        old = entry.state
        rules = P.DIR_TABLE.get((old, event))
        if rules is None:
            raise FirmwareError(
                f"home {self.node_id}: no directory rules for event "
                f"{event!r} in state {P.dir_state_name(old)} (line {line})"
            )
        # completion events act for the pending request, not the sender
        if event in (P.EV_ACK, P.EV_WBDATA, P.EV_EVICT_DIRTY) \
                and entry.pending is not None:
            want_rw, requester = entry.pending
        for rule in rules:
            if rule.guard is None or self._guard(rule.guard, entry,
                                                requester, src):
                break
        else:
            raise FirmwareError(
                f"home {self.node_id}: no directory rule matched event "
                f"{event!r} in state {P.dir_state_name(old)} (line {line}, "
                f"requester {requester}, src {src})"
            )
        detail = {"requester": requester, "src": src, "want_rw": want_rw,
                  "targets": None}
        if rule.action == "start_invalidate":
            detail["targets"] = tuple(sorted(entry.sharers - {requester}))
        san = self.sanitizer
        if san is not None:
            san.on_dir_transition(self, line, old, rule.next_state, event,
                                  rule.action, detail)
        result = self._mutate(rule.action, entry, detail)
        entry.state = rule.next_state
        return result

    def _mutate(self, action: str, entry: DirEntry, detail: Dict) -> Tuple:
        requester = detail["requester"]
        want_rw = detail["want_rw"]
        if action == "queue":
            entry.waiters.append((bool(want_rw), requester))
            return ("queue",)
        if action == "drop_duplicate":
            return ("dup",)
        if action in ("grant_ro", "install_grant_ro", "settle_grant_ro"):
            keep_ro = action != "grant_ro"
            entry.pending = None
            old_owner, entry.owner = entry.owner, None
            if action == "install_grant_ro" and old_owner is not None:
                # read recall: the downgraded owner stays on as a sharer
                entry.sharers = {old_owner}
            elif action == "settle_grant_ro":
                # the owner evicted everything before the recall landed
                entry.sharers = set()
            if requester != self.node_id:
                entry.sharers.add(requester)
            return ("grant", False, requester, keep_ro)
        if action == "grant_rw_local" or action == "install_grant_rw_local":
            entry.pending = None
            entry.pending_acks = 0
            entry.owner = None
            entry.sharers = set()
            return ("grant", True, requester, False)
        if action == "grant_rw_remote" or action == "install_grant_rw_remote":
            entry.pending = None
            entry.pending_acks = 0
            entry.owner = requester
            entry.sharers = set()
            return ("grant", True, requester, False)
        if action == "start_invalidate":
            targets = detail["targets"]
            entry.pending = (True, requester)
            entry.pending_acks = len(targets)
            return ("invalidate", targets)
        if action == "recall_ro" or action == "recall_inv":
            entry.pending = (bool(want_rw), requester)
            return ("recall", entry.owner, action == "recall_ro")
        if action == "count_ack":
            entry.pending_acks -= 1
            return ("wait",)
        if action == "drop_stale":
            return ("stale",)
        if action == "install_settle":
            entry.owner = None
            entry.sharers = set()
            return ("settle",)
        if action == "remove_sharer":
            entry.sharers.discard(detail["src"])
            return ("removed",)
        raise FirmwareError(f"unknown directory action {action!r}")

    # -- firmware-facing events --------------------------------------------

    def request(self, line: int, want_rw: bool, requester: int) -> Tuple:
        """RREQ/WREQ (or the home's own miss) arriving at the home."""
        event = P.EV_WRITE if want_rw else P.EV_READ
        return self._apply(line, event, requester=requester,
                           want_rw=want_rw)

    def ack(self, line: int, src: int) -> Tuple:
        """One INVACK; raises on an ack nobody is waiting for."""
        entry = self.entry(line)
        if entry.state != P.BUSY or entry.pending is None \
                or entry.pending_acks <= 0:
            raise FirmwareError(
                f"home {self.node_id}: unexpected INVACK for line {line}")
        return self._apply(line, P.EV_ACK, src=src)

    def wbdata(self, line: int, src: int) -> Tuple:
        """Recalled data returned by the (former) owner."""
        return self._apply(line, P.EV_WBDATA, src=src)

    def evict_clean(self, line: int, src: int) -> Tuple:
        """A sharer silently dropped its clean copy."""
        return self._apply(line, P.EV_EVICT, src=src)

    def evict_dirty(self, line: int, src: int) -> Tuple:
        """The owner evicted; its data re-validates the home frame."""
        return self._apply(line, P.EV_EVICT_DIRTY, src=src)

    def pop_waiter(self, line: int) -> Optional[Tuple[bool, int]]:
        """Next queued request, once the line has settled (else None)."""
        entry = self.entry(line)
        if entry.state == P.BUSY or not entry.waiters:
            return None
        waiter = entry.waiters.pop(0)
        san = self.sanitizer
        if san is not None:
            san.on_waiter_pop(self, line)
        return waiter
