"""The MSI directory protocol definition: states, events, tables.

Everything here is *data*.  The home-node directory controller
(:mod:`repro.coherence.directory`) executes these tables; the coherence
sanitizer (:mod:`repro.analysis.sanitize`) re-checks every observed
transition against the very same tables with an independently mirrored
owner/ack ledger; DESIGN.md renders them as documentation.

Three state spaces cooperate:

* **cache-line states** (``MSI_*``) — the 4-bit clsSRAM contents every
  node holds per line.  INVALID/PENDING/RO/RW map onto classic MSI as
  I / (transient) / S / M.
* **directory states** — what the line's *home* believes:
  ``HOME_VALID`` (home frame is the memory copy, ``sharers`` may read),
  ``EXCLUSIVE`` (one remote owner holds the only valid copy), ``BUSY``
  (an invalidation or recall is in flight; new requests queue).
* **L2 snoop reactions** — the bus-side MSI component: how the aP's
  snooping write-back cache reacts to foreign bus transactions.

Directory transitions are guarded rules: for a ``(state, event)`` pair
the first rule whose guard holds fires; a pair with no matching rule is
a protocol violation (the controller raises, sanitized or not).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NamedTuple, Optional, Tuple

from repro.bus.ops import BusOpType

# ----------------------------------------------------------------------
# cache-line (clsSRAM) states
# ----------------------------------------------------------------------

#: canonical S-COMA line states (values are the 4-bit clsSRAM contents).
MSI_INVALID = 0  #: line not present locally — fetch required
MSI_PENDING = 1  #: fetch/upgrade in flight — retry without re-notifying
MSI_RO = 2  #: readable (shared) copy present
MSI_RW = 3  #: writable (owned/modified) copy present

#: the four states the default protocol uses; other 4-bit values belong
#: to experimental protocols and are outside these tables.
MSI_STATES: FrozenSet[int] = frozenset(
    {MSI_INVALID, MSI_PENDING, MSI_RO, MSI_RW})

_LINE_NAMES = {MSI_INVALID: "INVALID", MSI_PENDING: "PENDING",
               MSI_RO: "RO", MSI_RW: "RW"}


def line_state_name(state: int) -> str:
    """Human name of a 4-bit line state (``custom(n)`` off-protocol)."""
    return _LINE_NAMES.get(state, f"custom({state})")


# ----------------------------------------------------------------------
# directory states and events
# ----------------------------------------------------------------------

HOME_VALID = "home"  #: home frame is the memory copy; ``sharers`` may read
EXCLUSIVE = "excl"  #: one remote owner holds the only valid (RW) copy
BUSY = "busy"  #: invalidation or recall in flight

DIR_STATES: Tuple[str, ...] = (HOME_VALID, EXCLUSIVE, BUSY)


def dir_state_name(state: str) -> str:
    return state.upper()


#: directory events (what arrives at, or completes inside, the home).
EV_READ = "read"  #: RREQ — or the home's own read miss
EV_WRITE = "write"  #: WREQ — or the home's own write miss/upgrade
EV_ACK = "ack"  #: INVACK from one invalidated sharer
EV_WBDATA = "wbdata"  #: recalled owner returned the line (WBREQ reply)
EV_EVICT = "evict"  #: a sharer dropped its clean copy (EVICT notice)
EV_EVICT_DIRTY = "evict_dirty"  #: the owner evicted; data came home


class DirRule(NamedTuple):
    """One guarded transition: first matching rule per (state, event)
    fires.  ``guard=None`` always matches (the catch-all last rule)."""

    guard: Optional[str]
    action: str
    next_state: str


#: the home-node directory transition table.
#:
#: Guards (evaluated against the entry + the event's requester/src):
#:
#: ====================  ==================================================
#: guard                 true when
#: ====================  ==================================================
#: ``other_sharers``     a sharer other than the requester holds the line
#: ``remote_requester``  the (pending) requester is not the home itself
#: ``requester_is_owner`` the requester already owns the line (duplicate)
#: ``src_is_owner``      the message sender is the recorded owner
#: ``stale_writeback``   returned data is NOT from the recorded owner —
#:                       a late echo of an already-settled recall/evict
#: ``more_acks``         invalidation acks are still outstanding after
#:                       this one
#: ``pending_read``      the request being completed wants read access
#: ====================  ==================================================
#:
#: Actions are executed by :class:`repro.coherence.directory.
#: DirectoryController` (bookkeeping) and the sP firmware (data movement
#: + messages); the sanitizer mirrors their owner/ack effects.
DIR_TABLE: Dict[Tuple[str, str], Tuple[DirRule, ...]] = {
    # -- requests at a settled home -----------------------------------
    (HOME_VALID, EV_READ): (
        DirRule(None, "grant_ro", HOME_VALID),
    ),
    (HOME_VALID, EV_WRITE): (
        DirRule("other_sharers", "start_invalidate", BUSY),
        DirRule("remote_requester", "grant_rw_remote", EXCLUSIVE),
        DirRule(None, "grant_rw_local", HOME_VALID),
    ),
    (EXCLUSIVE, EV_READ): (
        DirRule("requester_is_owner", "drop_duplicate", EXCLUSIVE),
        DirRule(None, "recall_ro", BUSY),
    ),
    (EXCLUSIVE, EV_WRITE): (
        DirRule("requester_is_owner", "drop_duplicate", EXCLUSIVE),
        DirRule(None, "recall_inv", BUSY),
    ),
    # -- requests hitting a line mid-transition queue -----------------
    (BUSY, EV_READ): (
        DirRule(None, "queue", BUSY),
    ),
    (BUSY, EV_WRITE): (
        DirRule(None, "queue", BUSY),
    ),
    # -- invalidation acks: the last one releases the write grant -----
    (BUSY, EV_ACK): (
        DirRule("more_acks", "count_ack", BUSY),
        DirRule("remote_requester", "grant_rw_remote", EXCLUSIVE),
        DirRule(None, "grant_rw_local", HOME_VALID),
    ),
    # -- recalled data returning (WBREQ reply) ------------------------
    (BUSY, EV_WBDATA): (
        DirRule("stale_writeback", "drop_stale", BUSY),
        DirRule("pending_read", "install_grant_ro", HOME_VALID),
        DirRule("remote_requester", "install_grant_rw_remote", EXCLUSIVE),
        DirRule(None, "install_grant_rw_local", HOME_VALID),
    ),
    (HOME_VALID, EV_WBDATA): (
        DirRule(None, "drop_stale", HOME_VALID),
    ),
    (EXCLUSIVE, EV_WBDATA): (
        DirRule(None, "drop_stale", EXCLUSIVE),
    ),
    # -- voluntary evictions ------------------------------------------
    (HOME_VALID, EV_EVICT): (
        DirRule(None, "remove_sharer", HOME_VALID),
    ),
    (EXCLUSIVE, EV_EVICT): (
        DirRule(None, "remove_sharer", EXCLUSIVE),
    ),
    (BUSY, EV_EVICT): (
        DirRule(None, "remove_sharer", BUSY),
    ),
    # A dirty eviction from the current owner settles the line; if a
    # recall was already in flight the eviction IS the writeback and
    # completes the pending request.  From anybody else it is a stale
    # echo of a previous ownership epoch and must not touch the frame.
    (EXCLUSIVE, EV_EVICT_DIRTY): (
        DirRule("src_is_owner", "install_settle", HOME_VALID),
        DirRule(None, "drop_stale", EXCLUSIVE),
    ),
    (BUSY, EV_EVICT_DIRTY): (
        DirRule("stale_writeback", "drop_stale", BUSY),
        DirRule("pending_read", "settle_grant_ro", HOME_VALID),
        DirRule("remote_requester", "install_grant_rw_remote", EXCLUSIVE),
        DirRule(None, "install_grant_rw_local", HOME_VALID),
    ),
    (HOME_VALID, EV_EVICT_DIRTY): (
        DirRule(None, "drop_stale", HOME_VALID),
    ),
}

#: actions that hand the line to a requester (the sanitizer enforces
#: no-stale-re-grant and ack conservation across exactly these).
GRANT_ACTIONS: FrozenSet[str] = frozenset({
    "grant_ro", "grant_rw_local", "grant_rw_remote",
    "install_grant_ro", "settle_grant_ro", "install_grant_rw_local",
    "install_grant_rw_remote",
})

#: grant actions that make a *remote* requester the exclusive owner.
OWNER_GRANT_ACTIONS: FrozenSet[str] = frozenset({
    "grant_rw_remote", "install_grant_rw_remote",
})

#: actions that install returned data into the home frame.
INSTALL_ACTIONS: FrozenSet[str] = frozenset({
    "install_grant_ro", "settle_grant_ro", "install_grant_rw_local",
    "install_grant_rw_remote", "install_settle",
})


# ----------------------------------------------------------------------
# cache-side (clsSRAM) transition legality, by cause
# ----------------------------------------------------------------------

#: firmware state writes carry a *cause*; each cause has a legal
#: (old-states, new-states) envelope.  ``None``-cause writes (machine
#: setup, block-transfer arming, experimental protocols) are outside
#: the table and only subject to the data-carrying-fill rule.
CACHE_TABLE: Dict[str, Tuple[FrozenSet[int], FrozenSet[int]]] = {
    # the home grants itself access after a local miss/upgrade (RW->RO
    # covers a read grant racing a just-settled dirty eviction)
    "grant": (frozenset({MSI_INVALID, MSI_PENDING, MSI_RO, MSI_RW}),
              frozenset({MSI_RO, MSI_RW})),
    # the home yields its copy to a new remote exclusive owner
    "yield_owner": (frozenset({MSI_INVALID, MSI_PENDING, MSI_RO, MSI_RW}),
                    frozenset({MSI_INVALID})),
    # the home keeps a readable copy while a remote reader joins
    "downgrade": (frozenset({MSI_RW}), frozenset({MSI_RO})),
    # a sharer drops its copy on INV (PENDING: an upgrade miss crossed
    # the invalidation; INVALID: eviction crossed it)
    "inv": (frozenset({MSI_INVALID, MSI_PENDING, MSI_RO}),
            frozenset({MSI_INVALID})),
    # the recalled owner answers WBREQ (RO when downgrading)
    "relinquish": (frozenset({MSI_RW}),
                   frozenset({MSI_RO, MSI_INVALID})),
    # the home re-validates its frame from recalled data
    "wb_install": (frozenset({MSI_INVALID, MSI_PENDING}),
                   frozenset({MSI_RO})),
    # a node voluntarily drops its cached copy
    "evict": (frozenset({MSI_RO, MSI_RW}), frozenset({MSI_INVALID})),
    # the home re-owns the line after the owner's dirty eviction
    "settle": (frozenset({MSI_INVALID, MSI_PENDING}),
               frozenset({MSI_RW})),
}


def cache_transition_legal(cause: str, old: int, new: int) -> bool:
    """Is ``old -> new`` inside the cause's legal envelope?

    Raises ``KeyError`` for an unknown cause — a firmware bug, not a
    protocol violation.  Off-protocol 4-bit values are always legal
    (experimental protocols own them).
    """
    if old not in MSI_STATES or new not in MSI_STATES:
        return True
    legal_old, legal_new = CACHE_TABLE[cause]
    return old in legal_old and new in legal_new


# ----------------------------------------------------------------------
# L2 snoop reactions (the bus-side MSI component)
# ----------------------------------------------------------------------


class SnoopReaction(NamedTuple):
    """How a snooping L2 reacts to one foreign (state, bus-op) pair.

    ``push`` reflects a Modified line into DRAM before the foreign data
    tenure (the model's intervention approximation); ``next_state`` is
    the MSI letter to move to (``None`` = keep).
    """

    push: bool
    next_state: Optional[str]


_READS = (BusOpType.READ, BusOpType.READ_LINE)
_FOREIGN_WRITES = (BusOpType.WRITE, BusOpType.WRITE_LINE)
_TAKEOVERS = (BusOpType.RWITM, BusOpType.FLUSH)

#: (MSI letter, bus op) -> reaction.  Pairs not listed take no action.
L2_SNOOP_TABLE: Dict[Tuple[str, BusOpType], SnoopReaction] = {}
for _op in _READS:
    L2_SNOOP_TABLE[("M", _op)] = SnoopReaction(push=True, next_state="S")
for _op in _TAKEOVERS + _FOREIGN_WRITES:
    L2_SNOOP_TABLE[("M", _op)] = SnoopReaction(push=True, next_state="I")
# KILL announces a foreign upgrade: our copy dies, but the upgrader owns
# current data, so a Modified copy here would be a protocol error — no
# push (matching hardware, which has nothing to push on a kill).
L2_SNOOP_TABLE[("M", BusOpType.KILL)] = SnoopReaction(push=False,
                                                      next_state="I")
for _op in _TAKEOVERS + _FOREIGN_WRITES + (BusOpType.KILL,):
    L2_SNOOP_TABLE[("S", _op)] = SnoopReaction(push=False, next_state="I")


def l2_snoop_reaction(state: str, op: BusOpType) -> Optional[SnoopReaction]:
    """Reaction of a snooping MSI L2 in ``state`` to foreign ``op``
    (``None`` = no action)."""
    return L2_SNOOP_TABLE.get((state, op))
