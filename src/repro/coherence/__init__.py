"""Directory-based MSI coherence: the protocol core.

The S-COMA coherence stack splits three ways, in the classic
msi / cache / directory shape:

* :mod:`repro.coherence.protocol` — the *protocol definition*: cache-line
  states, directory states, events, and the data-driven transition
  tables.  Pure data; importable by firmware, sanitizers, and docs
  tooling alike.
* :mod:`repro.coherence.directory` — the *home-node directory
  controller*: a pure state machine over the tables (sharer sets, owner,
  ack counting, waiter queues).  It performs no I/O; it returns action
  descriptors that the sP firmware executes.
* :mod:`repro.firmware.scoma` — the *mechanism*: sP firmware that moves
  data, sends protocol messages, and flips clsSRAM bits as the
  controller directs.

The split is what makes the protocol machine-checkable: the coherence
sanitizer replays every observed transition against the same tables the
controller runs on, with an independent mirror of owner/ack state.
"""

from repro.coherence.directory import DirectoryController, DirEntry
from repro.coherence.protocol import (
    BUSY,
    CACHE_TABLE,
    DIR_TABLE,
    EXCLUSIVE,
    HOME_VALID,
    MSI_INVALID,
    MSI_PENDING,
    MSI_RO,
    MSI_RW,
    cache_transition_legal,
    dir_state_name,
    l2_snoop_reaction,
    line_state_name,
)

__all__ = [
    "BUSY",
    "CACHE_TABLE",
    "DIR_TABLE",
    "DirEntry",
    "DirectoryController",
    "EXCLUSIVE",
    "HOME_VALID",
    "MSI_INVALID",
    "MSI_PENDING",
    "MSI_RO",
    "MSI_RW",
    "cache_transition_legal",
    "dir_state_name",
    "l2_snoop_reaction",
    "line_state_name",
]
